"""Lexer for the Verilog-2001 subset used throughout the library.

The lexer converts raw source text into a flat list of
:class:`repro.hdl.tokens.Token`.  It understands:

* line (``//``) and block (``/* */``) comments,
* sized and unsized numeric literals (``8'hFF``, ``4'b10_10``, ``42``),
* identifiers and the keyword subset,
* multi- and single-character operators,
* string literals (used only in rare ``$display`` style statements).

Anything outside this set raises :class:`repro.hdl.errors.LexerError` with a
precise source position, which keeps failures debuggable when the Trojan
generator and the parser disagree about the accepted subset.

Two implementations coexist:

* :class:`Lexer` — the original character-at-a-time scanner, kept as the
  golden reference (it owns the precise error messages and is what the
  equivalence tests compare against);
* :func:`tokenize` — a single compiled master-regex scanner that produces
  an identical token stream ~5x faster on valid sources (it is the scan
  engine's front-end hot path).  On any input the regex cannot fully
  consume, it defers to the golden scanner so error positions and messages
  stay exactly historical.
"""

from __future__ import annotations

import re
from typing import List

from .errors import LexerError
from .tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    PUNCTUATION,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)


class Lexer:
    """Tokenize Verilog source text."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low level helpers -------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        consumed = self.source[self.pos : self.pos + count]
        for char in consumed:
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return consumed

    def _error(self, message: str) -> LexerError:
        return LexerError(message, self.line, self.column)

    # -- token scanners ----------------------------------------------------
    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.source):
                    raise self._error("Unterminated block comment")
                self._advance(2)
            else:
                return

    def _scan_identifier(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self.pos < len(self.source) and (self._peek().isalnum() or self._peek() in "_$"):
            self._advance()
        text = self.source[start : self.pos]
        token_type = TokenType.KEYWORD if text in KEYWORDS else TokenType.IDENTIFIER
        return Token(token_type, text, line, column)

    def _scan_number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        # Optional decimal size prefix.
        while self.pos < len(self.source) and (self._peek().isdigit() or self._peek() == "_"):
            self._advance()
        if self._peek() == "'":
            self._advance()
            if self._peek() in "sS":
                self._advance()
            base = self._peek().lower()
            if base not in "bodh":
                raise self._error(f"Invalid numeric base {base!r}")
            self._advance()
            digits_start = self.pos
            while self.pos < len(self.source) and (
                self._peek().isalnum() or self._peek() in "_xXzZ?"
            ):
                self._advance()
            if self.pos == digits_start:
                raise self._error("Numeric literal missing digits after base")
        text = self.source[start : self.pos]
        return Token(TokenType.NUMBER, text, line, column)

    def _scan_string(self) -> Token:
        line, column = self.line, self.column
        self._advance()  # opening quote
        start = self.pos
        while self.pos < len(self.source) and self._peek() != '"':
            if self._peek() == "\n":
                raise self._error("Unterminated string literal")
            self._advance()
        if self.pos >= len(self.source):
            raise self._error("Unterminated string literal")
        text = self.source[start : self.pos]
        self._advance()  # closing quote
        return Token(TokenType.STRING, text, line, column)

    def _scan_operator_or_punctuation(self) -> Token:
        line, column = self.line, self.column
        for op in MULTI_CHAR_OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token(TokenType.OPERATOR, op, line, column)
        char = self._peek()
        if char in PUNCTUATION:
            self._advance()
            return Token(TokenType.PUNCTUATION, char, line, column)
        if char in SINGLE_CHAR_OPERATORS:
            self._advance()
            return Token(TokenType.OPERATOR, char, line, column)
        raise self._error(f"Unexpected character {char!r}")

    # -- public API ----------------------------------------------------------
    def tokenize(self) -> List[Token]:
        """Scan the entire source and return the token list (EOF-terminated)."""
        tokens: List[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                break
            char = self._peek()
            if char.isalpha() or char in "_$":
                tokens.append(self._scan_identifier())
            elif char.isdigit() or (char == "'" and self._peek(1).lower() in "sbodh"):
                tokens.append(self._scan_number())
            elif char == '"':
                tokens.append(self._scan_string())
            else:
                tokens.append(self._scan_operator_or_punctuation())
        tokens.append(Token(TokenType.EOF, "", self.line, self.column))
        return tokens


# ---------------------------------------------------------------------------
# Fast master-regex scanner
# ---------------------------------------------------------------------------

#: One alternation per token class, ordered so longer/more specific matches
#: win.  The groups mirror the golden scanner's dispatch exactly: skippable
#: whitespace/comments, sized-or-plain numeric literals, identifiers and
#: keywords, strings, multi-char operators (longest first), then single-char
#: operators and punctuation.
_MASTER_PATTERN = re.compile(
    r"(?P<SKIP>[ \t\r\n]+|//[^\n]*|/\*.*?\*/)"
    r"|(?P<NUMBER>(?:[0-9][0-9_]*)?'[sS]?[bBoOdDhH][A-Za-z0-9_?]+|[0-9][0-9_]*)"
    r"|(?P<IDENT>[A-Za-z_$][A-Za-z0-9_$]*)"
    r'|(?P<STRING>"[^"\n]*")'
    r"|(?P<OPERATOR>"
    + "|".join(re.escape(op) for op in MULTI_CHAR_OPERATORS)
    + r"|[" + re.escape(SINGLE_CHAR_OPERATORS) + r"])"
    r"|(?P<PUNCTUATION>[" + re.escape(PUNCTUATION) + r"])",
    re.DOTALL,
)

def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` in one call (fast path, golden-equivalent).

    Produces the exact token stream of ``Lexer(source).tokenize()``.  If the
    master regex cannot consume the whole input (stray character, malformed
    literal, unterminated comment/string), the golden scanner is re-run so
    the raised :class:`LexerError` carries the historical message and
    position.
    """
    tokens: List[Token] = []
    append = tokens.append
    pos = 0
    length = len(source)
    # Tokens never span newlines (multi-line content only occurs inside SKIP
    # matches), so the line number and line start advance incrementally.
    line = 1
    line_start = 0
    keyword, identifier = TokenType.KEYWORD, TokenType.IDENTIFIER
    types = {
        "NUMBER": TokenType.NUMBER,
        "STRING": TokenType.STRING,
        "OPERATOR": TokenType.OPERATOR,
        "PUNCTUATION": TokenType.PUNCTUATION,
    }
    for match in _MASTER_PATTERN.finditer(source):
        start = match.start()
        if start != pos:
            return Lexer(source).tokenize()  # gap: defer to golden errors
        pos = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind == "SKIP":
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = start + text.rindex("\n") + 1
            continue
        if kind == "IDENT":
            token_type = keyword if text in KEYWORDS else identifier
        else:
            token_type = types[kind]
            if kind == "STRING":
                text = text[1:-1]
        append(Token(token_type, text, line, start - line_start + 1))
    if pos != length:
        return Lexer(source).tokenize()  # trailing garbage: golden errors
    # An *unterminated* block comment lexes as a '/' operator immediately
    # followed by a '*'-initial operator ('*' or '**') here — a terminated
    # one is consumed by SKIP — so defer those to the golden scanner, which
    # raises the historical error.
    for first, second in zip(tokens, tokens[1:]):
        if (
            first.value == "/"
            and second.value.startswith("*")
            and first.line == second.line
            and second.column == first.column + 1
        ):
            return Lexer(source).tokenize()
    tokens.append(Token(TokenType.EOF, "", line, length - line_start + 1))
    return tokens
