"""AST node classes for the Verilog subset.

The node hierarchy is intentionally flat and dataclass-based: nodes carry
children either directly (expressions) or in lists (module items, statement
blocks).  ``children()`` gives a uniform way to walk any node, which the
feature extractors in :mod:`repro.features` rely on heavily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class Node:
    """Base class for every AST node."""

    def children(self) -> List["Node"]:
        """Child nodes in source order (empty for leaves)."""
        return []

    @property
    def kind(self) -> str:
        """Short node-kind name used by feature extraction and reporting."""
        return type(self).__name__


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Identifier(Node):
    """A signal, parameter or instance reference."""

    name: str


#: Memoised ``literal text -> (value, width)`` decodings for Number.parse.
_NUMBER_LITERAL_CACHE: dict = {}


@dataclass
class Number(Node):
    """A numeric literal, kept verbatim plus a best-effort integer value."""

    text: str
    value: Optional[int] = None
    width: Optional[int] = None

    @staticmethod
    def parse(text: str) -> "Number":
        """Parse a Verilog literal such as ``8'hFF`` or ``42``.

        The (value, width) decoding of each distinct literal text is
        memoised — RTL repeats the same constants heavily — but every call
        still returns a *fresh* node, so ASTs never share node objects.
        """
        try:
            value, width = _NUMBER_LITERAL_CACHE[text]
        except KeyError:
            width = None
            value = None
            if "'" in text:
                size_part, rest = text.split("'", 1)
                if size_part:
                    width = int(size_part.replace("_", ""))
                rest = rest.lstrip("sS")
                base_char = rest[0].lower()
                digits = rest[1:].replace("_", "")
                base = {"b": 2, "o": 8, "d": 10, "h": 16}[base_char]
                try:
                    value = int(digits, base)
                except ValueError:
                    value = None  # x/z digits: value unknown
            else:
                value = int(text.replace("_", ""))
            _NUMBER_LITERAL_CACHE[text] = (value, width)
        return Number(text=text, value=value, width=width)


@dataclass
class StringLiteral(Node):
    """A quoted string (rare in the subset, e.g. ``$display`` arguments)."""

    value: str


@dataclass
class UnaryOp(Node):
    """Unary operator, including reduction operators (``&a``, ``|a`` ...)."""

    op: str
    operand: Node

    def children(self) -> List[Node]:
        return [self.operand]


@dataclass
class BinaryOp(Node):
    """Binary operator expression."""

    op: str
    left: Node
    right: Node

    def children(self) -> List[Node]:
        return [self.left, self.right]


@dataclass
class Ternary(Node):
    """Conditional expression ``cond ? a : b``."""

    condition: Node
    if_true: Node
    if_false: Node

    def children(self) -> List[Node]:
        return [self.condition, self.if_true, self.if_false]


@dataclass
class Concat(Node):
    """Concatenation ``{a, b, c}``."""

    parts: List[Node] = field(default_factory=list)

    def children(self) -> List[Node]:
        return list(self.parts)


@dataclass
class Replicate(Node):
    """Replication ``{4{a}}``."""

    count: Node
    value: Node

    def children(self) -> List[Node]:
        return [self.count, self.value]


@dataclass
class BitSelect(Node):
    """Single-bit select ``a[3]``."""

    base: Node
    index: Node

    def children(self) -> List[Node]:
        return [self.base, self.index]


@dataclass
class PartSelect(Node):
    """Part select ``a[7:0]``."""

    base: Node
    msb: Node
    lsb: Node

    def children(self) -> List[Node]:
        return [self.base, self.msb, self.lsb]


@dataclass
class FunctionCall(Node):
    """System or user function call, e.g. ``$random`` (kept opaque)."""

    name: str
    args: List[Node] = field(default_factory=list)

    def children(self) -> List[Node]:
        return list(self.args)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Block(Node):
    """``begin ... end`` statement block."""

    statements: List[Node] = field(default_factory=list)

    def children(self) -> List[Node]:
        return list(self.statements)


@dataclass
class BlockingAssign(Node):
    """Procedural blocking assignment ``lhs = rhs;``."""

    target: Node
    value: Node

    def children(self) -> List[Node]:
        return [self.target, self.value]


@dataclass
class NonBlockingAssign(Node):
    """Procedural non-blocking assignment ``lhs <= rhs;``."""

    target: Node
    value: Node

    def children(self) -> List[Node]:
        return [self.target, self.value]


@dataclass
class If(Node):
    """``if``/``else`` statement; ``else_branch`` may be another :class:`If`."""

    condition: Node
    then_branch: Node
    else_branch: Optional[Node] = None

    def children(self) -> List[Node]:
        nodes = [self.condition, self.then_branch]
        if self.else_branch is not None:
            nodes.append(self.else_branch)
        return nodes


@dataclass
class CaseItem(Node):
    """One arm of a case statement; ``labels`` empty means ``default``."""

    labels: List[Node]
    body: Node

    def children(self) -> List[Node]:
        return list(self.labels) + [self.body]

    @property
    def is_default(self) -> bool:
        return not self.labels


@dataclass
class Case(Node):
    """``case``/``casez``/``casex`` statement."""

    subject: Node
    items: List[CaseItem] = field(default_factory=list)
    variant: str = "case"

    def children(self) -> List[Node]:
        return [self.subject] + list(self.items)


@dataclass
class ForLoop(Node):
    """``for (init; cond; step) body`` loop."""

    init: Node
    condition: Node
    step: Node
    body: Node

    def children(self) -> List[Node]:
        return [self.init, self.condition, self.step, self.body]


@dataclass
class SystemTaskCall(Node):
    """System task statement such as ``$display(...);``."""

    name: str
    args: List[Node] = field(default_factory=list)

    def children(self) -> List[Node]:
        return list(self.args)


# ---------------------------------------------------------------------------
# Module items
# ---------------------------------------------------------------------------


@dataclass
class Range(Node):
    """Bit range ``[msb:lsb]`` used in declarations."""

    msb: Node
    lsb: Node

    def children(self) -> List[Node]:
        return [self.msb, self.lsb]

    def width(self) -> Optional[int]:
        """Best-effort static width (``None`` when not constant)."""
        if isinstance(self.msb, Number) and isinstance(self.lsb, Number):
            if self.msb.value is not None and self.lsb.value is not None:
                return abs(self.msb.value - self.lsb.value) + 1
        return None


@dataclass
class PortDeclaration(Node):
    """``input``/``output``/``inout`` declaration (possibly also ``reg``)."""

    direction: str
    names: List[str]
    range: Optional[Range] = None
    is_reg: bool = False
    is_signed: bool = False

    def children(self) -> List[Node]:
        return [self.range] if self.range is not None else []

    def width(self) -> int:
        if self.range is None:
            return 1
        return self.range.width() or 1


@dataclass
class NetDeclaration(Node):
    """``wire``/``reg``/``integer`` declaration."""

    net_type: str
    names: List[str]
    range: Optional[Range] = None
    is_signed: bool = False

    def children(self) -> List[Node]:
        return [self.range] if self.range is not None else []

    def width(self) -> int:
        if self.range is None:
            return 1
        return self.range.width() or 1


@dataclass
class ParameterDeclaration(Node):
    """``parameter``/``localparam`` declaration."""

    name: str
    value: Node
    local: bool = False

    def children(self) -> List[Node]:
        return [self.value]


@dataclass
class ContinuousAssign(Node):
    """``assign lhs = rhs;``."""

    target: Node
    value: Node

    def children(self) -> List[Node]:
        return [self.target, self.value]


@dataclass
class SensitivityItem(Node):
    """One item of an always sensitivity list."""

    signal: Node
    edge: Optional[str] = None  # "posedge", "negedge" or None (level)

    def children(self) -> List[Node]:
        return [self.signal]


@dataclass
class Always(Node):
    """``always @(...) statement`` block."""

    sensitivity: List[SensitivityItem]
    body: Node
    is_star: bool = False  # always @(*)

    def children(self) -> List[Node]:
        return list(self.sensitivity) + [self.body]

    @property
    def is_sequential(self) -> bool:
        """True when any sensitivity item is edge-triggered."""
        return any(item.edge for item in self.sensitivity)


@dataclass
class Initial(Node):
    """``initial`` block (testbench style, rarely present in designs)."""

    body: Node

    def children(self) -> List[Node]:
        return [self.body]


@dataclass
class PortConnection(Node):
    """Named port connection ``.port(expr)`` in an instantiation."""

    port: str
    expr: Optional[Node]

    def children(self) -> List[Node]:
        return [self.expr] if self.expr is not None else []


@dataclass
class Instantiation(Node):
    """Module instantiation ``modname inst (.a(x), .b(y));``."""

    module_name: str
    instance_name: str
    connections: List[PortConnection] = field(default_factory=list)
    parameter_overrides: List[Tuple[str, Node]] = field(default_factory=list)

    def children(self) -> List[Node]:
        nodes: List[Node] = list(self.connections)
        nodes.extend(value for _, value in self.parameter_overrides)
        return nodes


@dataclass
class Module(Node):
    """A Verilog module: header ports plus the ordered list of items."""

    name: str
    ports: List[str] = field(default_factory=list)
    items: List[Node] = field(default_factory=list)

    def children(self) -> List[Node]:
        return list(self.items)

    # -- convenience accessors used across the library -------------------
    def port_declarations(self) -> List[PortDeclaration]:
        return [item for item in self.items if isinstance(item, PortDeclaration)]

    def net_declarations(self) -> List[NetDeclaration]:
        return [item for item in self.items if isinstance(item, NetDeclaration)]

    def always_blocks(self) -> List[Always]:
        return [item for item in self.items if isinstance(item, Always)]

    def continuous_assigns(self) -> List[ContinuousAssign]:
        return [item for item in self.items if isinstance(item, ContinuousAssign)]

    def instantiations(self) -> List[Instantiation]:
        return [item for item in self.items if isinstance(item, Instantiation)]

    def parameters(self) -> List[ParameterDeclaration]:
        return [item for item in self.items if isinstance(item, ParameterDeclaration)]


@dataclass
class SourceFile(Node):
    """A parsed source file: one or more modules."""

    modules: List[Module] = field(default_factory=list)

    def children(self) -> List[Node]:
        return list(self.modules)

    def module(self, name: Optional[str] = None) -> Module:
        """Return the named module, or the single/top module when omitted."""
        if not self.modules:
            raise ValueError("source file contains no modules")
        if name is None:
            return self.modules[0]
        for module in self.modules:
            if module.name == name:
                return module
        raise KeyError(f"module {name!r} not found")
