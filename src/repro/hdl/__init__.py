"""Verilog front-end: lexer, parser, AST, visitors and emitter.

This subpackage is the RTL substrate the rest of the library builds on.  The
supported subset of Verilog-2001 covers the constructs found in RTL Trojan
benchmarks: module/port/net/parameter declarations, continuous assigns,
always blocks with if/case/for statements, blocking and non-blocking
assignments, expressions and module instantiations.
"""

from . import ast_nodes as ast
from .ast_nodes import Module, SourceFile
from .emitter import VerilogEmitter, emit_module, emit_source
from .errors import HDLError, LexerError, ParseError
from .lexer import Lexer, tokenize
from .parser import Parser, parse_module, parse_source
from .visitor import (
    NodeVisitor,
    collect,
    count_nodes,
    identifiers_in,
    max_depth,
    node_kind_histogram,
    walk,
)

__all__ = [
    "HDLError",
    "Lexer",
    "LexerError",
    "Module",
    "NodeVisitor",
    "ParseError",
    "Parser",
    "SourceFile",
    "VerilogEmitter",
    "ast",
    "collect",
    "count_nodes",
    "emit_module",
    "emit_source",
    "identifiers_in",
    "max_depth",
    "node_kind_histogram",
    "parse_module",
    "parse_source",
    "tokenize",
    "walk",
]
