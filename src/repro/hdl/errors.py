"""Exception types raised by the Verilog front-end."""

from __future__ import annotations


class HDLError(Exception):
    """Base class for all HDL front-end errors."""


class LexerError(HDLError):
    """Raised when the source text contains a character sequence that is not
    part of the supported Verilog subset."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(HDLError):
    """Raised when the token stream cannot be parsed into an AST."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column
