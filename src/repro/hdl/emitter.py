"""Verilog source emission (AST -> text).

The emitter produces deterministic, readable Verilog for any AST the parser
can build.  It is used in two places:

* the Trojan insertion engine (:mod:`repro.trojan.insertion`) modifies ASTs
  and re-emits source so the full pipeline — generate, infect, re-parse,
  extract features — exercises the parser on its own output;
* round-trip tests (`emit(parse(emit(parse(src))))` is a fixpoint), which
  pin down both the parser and the emitter.
"""

from __future__ import annotations

from typing import List

from . import ast_nodes as ast

_INDENT = "  "


class VerilogEmitter:
    """Convert AST nodes back into Verilog source text."""

    def emit_source(self, source: ast.SourceFile) -> str:
        return "\n\n".join(self.emit_module(module) for module in source.modules) + "\n"

    # -- modules ------------------------------------------------------------
    def emit_module(self, module: ast.Module) -> str:
        lines: List[str] = []
        port_list = ", ".join(module.ports)
        lines.append(f"module {module.name} ({port_list});")
        for item in module.items:
            lines.append(self._emit_item(item, 1))
        lines.append("endmodule")
        return "\n".join(lines)

    def _emit_item(self, item: ast.Node, level: int) -> str:
        pad = _INDENT * level
        if isinstance(item, ast.PortDeclaration):
            return pad + self._emit_port_declaration(item)
        if isinstance(item, ast.NetDeclaration):
            return pad + self._emit_net_declaration(item)
        if isinstance(item, ast.ParameterDeclaration):
            keyword = "localparam" if item.local else "parameter"
            return f"{pad}{keyword} {item.name} = {self.emit_expression(item.value)};"
        if isinstance(item, ast.ContinuousAssign):
            target = self.emit_expression(item.target)
            value = self.emit_expression(item.value)
            return f"{pad}assign {target} = {value};"
        if isinstance(item, ast.Always):
            return self._emit_always(item, level)
        if isinstance(item, ast.Initial):
            return f"{pad}initial\n{self._emit_statement(item.body, level + 1)}"
        if isinstance(item, ast.Instantiation):
            return pad + self._emit_instantiation(item)
        raise TypeError(f"Cannot emit module item of type {type(item).__name__}")

    def _emit_port_declaration(self, decl: ast.PortDeclaration) -> str:
        parts = [decl.direction]
        if decl.is_reg:
            parts.append("reg")
        if decl.is_signed:
            parts.append("signed")
        if decl.range is not None:
            parts.append(self._emit_range(decl.range))
        parts.append(", ".join(decl.names))
        return " ".join(parts) + ";"

    def _emit_net_declaration(self, decl: ast.NetDeclaration) -> str:
        parts = [decl.net_type]
        if decl.is_signed:
            parts.append("signed")
        if decl.range is not None:
            parts.append(self._emit_range(decl.range))
        parts.append(", ".join(decl.names))
        return " ".join(parts) + ";"

    def _emit_range(self, rng: ast.Range) -> str:
        return f"[{self.emit_expression(rng.msb)}:{self.emit_expression(rng.lsb)}]"

    def _emit_always(self, always: ast.Always, level: int) -> str:
        pad = _INDENT * level
        if always.is_star:
            sensitivity = "*"
        else:
            items = []
            for item in always.sensitivity:
                signal = self.emit_expression(item.signal)
                items.append(f"{item.edge} {signal}" if item.edge else signal)
            sensitivity = " or ".join(items)
        header = f"{pad}always @({sensitivity})"
        body = self._emit_statement(always.body, level + 1)
        return f"{header}\n{body}"

    def _emit_instantiation(self, inst: ast.Instantiation) -> str:
        params = ""
        if inst.parameter_overrides:
            rendered = []
            for name, value in inst.parameter_overrides:
                expr = self.emit_expression(value)
                rendered.append(f".{name}({expr})" if name else expr)
            params = " #(" + ", ".join(rendered) + ")"
        connections = []
        for conn in inst.connections:
            expr = self.emit_expression(conn.expr) if conn.expr is not None else ""
            if conn.port.startswith("__pos"):
                connections.append(expr)
            else:
                connections.append(f".{conn.port}({expr})")
        return f"{inst.module_name}{params} {inst.instance_name} ({', '.join(connections)});"

    # -- statements -----------------------------------------------------------
    def _emit_statement(self, statement: ast.Node, level: int) -> str:
        pad = _INDENT * level
        if isinstance(statement, ast.Block):
            lines = [f"{pad}begin"]
            for inner in statement.statements:
                lines.append(self._emit_statement(inner, level + 1))
            lines.append(f"{pad}end")
            return "\n".join(lines)
        if isinstance(statement, ast.BlockingAssign):
            return (
                f"{pad}{self.emit_expression(statement.target)} = "
                f"{self.emit_expression(statement.value)};"
            )
        if isinstance(statement, ast.NonBlockingAssign):
            return (
                f"{pad}{self.emit_expression(statement.target)} <= "
                f"{self.emit_expression(statement.value)};"
            )
        if isinstance(statement, ast.If):
            lines = [f"{pad}if ({self.emit_expression(statement.condition)})"]
            lines.append(self._emit_statement(statement.then_branch, level + 1))
            if statement.else_branch is not None:
                lines.append(f"{pad}else")
                lines.append(self._emit_statement(statement.else_branch, level + 1))
            return "\n".join(lines)
        if isinstance(statement, ast.Case):
            lines = [f"{pad}{statement.variant} ({self.emit_expression(statement.subject)})"]
            for item in statement.items:
                if item.is_default:
                    lines.append(f"{pad}{_INDENT}default:")
                else:
                    labels = ", ".join(self.emit_expression(label) for label in item.labels)
                    lines.append(f"{pad}{_INDENT}{labels}:")
                lines.append(self._emit_statement(item.body, level + 2))
            lines.append(f"{pad}endcase")
            return "\n".join(lines)
        if isinstance(statement, ast.ForLoop):
            init = self._emit_inline_assign(statement.init)
            cond = self.emit_expression(statement.condition)
            step = self._emit_inline_assign(statement.step)
            header = f"{pad}for ({init}; {cond}; {step})"
            return f"{header}\n{self._emit_statement(statement.body, level + 1)}"
        if isinstance(statement, ast.SystemTaskCall):
            args = ", ".join(self.emit_expression(arg) for arg in statement.args)
            return f"{pad}{statement.name}({args});" if statement.args else f"{pad}{statement.name};"
        raise TypeError(f"Cannot emit statement of type {type(statement).__name__}")

    def _emit_inline_assign(self, assign: ast.Node) -> str:
        if not isinstance(assign, ast.BlockingAssign):
            raise TypeError("for-loop init/step must be blocking assignments")
        return f"{self.emit_expression(assign.target)} = {self.emit_expression(assign.value)}"

    # -- expressions ------------------------------------------------------------
    def emit_expression(self, expr: ast.Node) -> str:
        if isinstance(expr, ast.Identifier):
            return expr.name
        if isinstance(expr, ast.Number):
            return expr.text
        if isinstance(expr, ast.StringLiteral):
            return f'"{expr.value}"'
        if isinstance(expr, ast.UnaryOp):
            return f"{expr.op}{self._parenthesize(expr.operand)}"
        if isinstance(expr, ast.BinaryOp):
            left = self._parenthesize(expr.left)
            right = self._parenthesize(expr.right)
            return f"{left} {expr.op} {right}"
        if isinstance(expr, ast.Ternary):
            return (
                f"{self._parenthesize(expr.condition)} ? "
                f"{self._parenthesize(expr.if_true)} : {self._parenthesize(expr.if_false)}"
            )
        if isinstance(expr, ast.Concat):
            return "{" + ", ".join(self.emit_expression(p) for p in expr.parts) + "}"
        if isinstance(expr, ast.Replicate):
            return "{" + self.emit_expression(expr.count) + "{" + self.emit_expression(expr.value) + "}}"
        if isinstance(expr, ast.BitSelect):
            return f"{self.emit_expression(expr.base)}[{self.emit_expression(expr.index)}]"
        if isinstance(expr, ast.PartSelect):
            return (
                f"{self.emit_expression(expr.base)}"
                f"[{self.emit_expression(expr.msb)}:{self.emit_expression(expr.lsb)}]"
            )
        if isinstance(expr, ast.FunctionCall):
            args = ", ".join(self.emit_expression(arg) for arg in expr.args)
            return f"{expr.name}({args})"
        raise TypeError(f"Cannot emit expression of type {type(expr).__name__}")

    def _parenthesize(self, expr: ast.Node) -> str:
        """Wrap compound sub-expressions so emitted text never changes meaning."""
        text = self.emit_expression(expr)
        if isinstance(expr, (ast.BinaryOp, ast.Ternary, ast.UnaryOp)):
            return f"({text})"
        return text


def emit_source(source: ast.SourceFile) -> str:
    """Emit a whole source file."""
    return VerilogEmitter().emit_source(source)


def emit_module(module: ast.Module) -> str:
    """Emit a single module."""
    return VerilogEmitter().emit_module(module)
