"""Token definitions for the Verilog subset lexer."""

from __future__ import annotations

from enum import Enum, auto
from typing import NamedTuple


class TokenType(Enum):
    """Token categories produced by :class:`repro.hdl.lexer.Lexer`."""

    KEYWORD = auto()
    IDENTIFIER = auto()
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    PUNCTUATION = auto()
    EOF = auto()


class Token(NamedTuple):
    """A single lexical token with its source position (1-based).

    A ``NamedTuple`` rather than a frozen dataclass: construction happens
    once per token on the scan engine's hot path, and the C-level tuple
    constructor is several times faster while staying immutable and
    field-for-field comparable.
    """

    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


#: Keywords recognised by the subset grammar.  Anything else that looks like
#: an identifier is treated as a plain identifier.
KEYWORDS = frozenset(
    {
        "module",
        "endmodule",
        "input",
        "output",
        "inout",
        "wire",
        "reg",
        "integer",
        "parameter",
        "localparam",
        "assign",
        "always",
        "initial",
        "begin",
        "end",
        "if",
        "else",
        "case",
        "casez",
        "casex",
        "endcase",
        "default",
        "posedge",
        "negedge",
        "or",
        "for",
        "signed",
    }
)

#: Multi-character operators, longest first so the lexer can greedily match.
MULTI_CHAR_OPERATORS = (
    "<<<",
    ">>>",
    "===",
    "!==",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "~&",
    "~|",
    "~^",
    "^~",
    "**",
)

#: Single-character operators.
SINGLE_CHAR_OPERATORS = "+-*/%&|^~!<>?=:"

#: Punctuation characters that delimit structure.
PUNCTUATION = "()[]{};,.#@"
