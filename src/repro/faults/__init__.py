"""Fault injection and unified failure policy for the scan engine and service.

Two stdlib-only modules:

:mod:`repro.faults.failpoints`
    Named *failpoints* — ``failpoint("cache.flush.io")`` guards compiled
    into the production code at every interesting I/O or worker boundary.
    Inert (one dict lookup) unless activated through the
    ``REPRO_FAILPOINTS`` environment variable or the ``--failpoints`` CLI
    flag, in which case they raise injected errors, add delays, kill the
    process or corrupt bytes — with per-site probability and hit budgets.
    The chaos suite (``tests/test_chaos.py``) drives every degraded path
    through the public surfaces this way.

:mod:`repro.faults.policy`
    The single home of retry/backoff/deadline policy: the
    :class:`~repro.faults.policy.RetryPolicy` and
    :class:`~repro.faults.policy.Deadline` primitives plus the named
    constants (shard retries, cache-lock acquisition, hot-reload probe
    TTL, serve admission budgets) that the engine and serve layers
    previously hard-coded independently.

See ``docs/ROBUSTNESS.md`` for the spec grammar, the policy table and
the degradation matrix.
"""

from .failpoints import (
    FAILPOINTS_ENV,
    FailpointSpecError,
    active_failpoints,
    configure,
    configure_from_env,
    corrupting_failpoint,
    failpoint,
    failpoints_active,
)
from .policy import (
    DEFAULT_MAX_PIPELINED_REQUESTS,
    DEFAULT_MAX_QUEUE_DEPTH,
    DEFAULT_OUTBUF_BUDGET_BYTES,
    DEFAULT_RETRY_AFTER_S,
    LOCK_ACQUIRE_DEADLINE_S,
    LOCK_RETRY_POLICY,
    LOCK_STALE_AFTER_S,
    RELOAD_PROBE_TTL_S,
    SHARD_DEADLINE_S,
    SHARD_RETRY_POLICY,
    Deadline,
    RetryPolicy,
)

__all__ = [
    "FAILPOINTS_ENV",
    "FailpointSpecError",
    "active_failpoints",
    "configure",
    "configure_from_env",
    "corrupting_failpoint",
    "failpoint",
    "failpoints_active",
    "Deadline",
    "RetryPolicy",
    "DEFAULT_MAX_PIPELINED_REQUESTS",
    "DEFAULT_MAX_QUEUE_DEPTH",
    "DEFAULT_OUTBUF_BUDGET_BYTES",
    "DEFAULT_RETRY_AFTER_S",
    "LOCK_ACQUIRE_DEADLINE_S",
    "LOCK_RETRY_POLICY",
    "LOCK_STALE_AFTER_S",
    "RELOAD_PROBE_TTL_S",
    "SHARD_DEADLINE_S",
    "SHARD_RETRY_POLICY",
]
