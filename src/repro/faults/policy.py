"""Unified retry, backoff and deadline policy for the engine and serve layers.

Before this module each subsystem hard-coded its own failure constants —
``DEFAULT_MAX_RETRIES``/``DEFAULT_SHARD_TIMEOUT`` in the scheduler, the
namespace-lock timeout and poll interval in the cache, the hot-reload
probe TTL in the serve registry.  They now all read from here, so one
table (mirrored in ``docs/ROBUSTNESS.md``) answers "how many times, how
long, how fast do we back off" for the whole system:

=======================  ===========================================
Policy                   Meaning
=======================  ===========================================
:data:`SHARD_RETRY_POLICY`      scheduler shard requeue budget
:data:`SHARD_DEADLINE_S`        per-shard wall-clock deadline
:data:`LOCK_RETRY_POLICY`       cache-lock poll backoff (jittered)
:data:`LOCK_ACQUIRE_DEADLINE_S` cache-lock acquisition deadline
:data:`LOCK_STALE_AFTER_S`      cache-lock staleness horizon
:data:`RELOAD_PROBE_TTL_S`      serve hot-reload stat-probe TTL
:data:`DEFAULT_MAX_QUEUE_DEPTH` serve admission gate (queued requests)
:data:`DEFAULT_RETRY_AFTER_S`   ``Retry-After`` hint on 429 responses
:data:`DEFAULT_OUTBUF_BUDGET_BYTES`    per-connection response buffer cap
:data:`DEFAULT_MAX_PIPELINED_REQUESTS` per-connection in-flight cap
=======================  ===========================================
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and optional jitter.

    ``max_retries`` counts *re*-tries: a policy with ``max_retries=2``
    allows three attempts in total.  ``None`` means unbounded retries —
    callers then bound the loop with a :class:`Deadline` instead.
    Backoff for retry ``attempt`` (1-based) is
    ``base_delay_s * multiplier**(attempt-1)`` capped at ``max_delay_s``,
    scaled by a uniform factor in ``[1-jitter, 1+jitter]``.  A zero
    ``base_delay_s`` (the scheduler's immediate-requeue policy) always
    yields zero backoff.
    """

    max_retries: Optional[int]
    base_delay_s: float = 0.0
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    jitter: float = 0.0

    @property
    def attempts(self) -> Optional[int]:
        """Total tries including the first (``None`` when unbounded)."""
        return None if self.max_retries is None else self.max_retries + 1

    def allows(self, failed_attempts: int) -> bool:
        """Whether another try is allowed after ``failed_attempts`` failures."""
        return self.max_retries is None or failed_attempts <= self.max_retries

    def backoff_s(
        self, attempt: int, rng: Optional[random.Random] = None
    ) -> float:
        """Delay before retry number ``attempt`` (1-based), jittered."""
        if self.base_delay_s <= 0.0:
            return 0.0
        delay = min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier ** max(0, attempt - 1),
        )
        if self.jitter > 0.0 and rng is not None:
            delay *= 1.0 - self.jitter + 2.0 * self.jitter * rng.random()
        return delay


class Deadline:
    """An absolute monotonic deadline that propagates through call layers.

    Built once where the budget is decided (a request header, a CLI
    flag, a policy constant) and passed down, so every layer measures
    against the *same* clock instead of re-starting its own timeout.
    ``Deadline(None)`` never expires.
    """

    __slots__ = ("_expires_at",)

    def __init__(self, seconds: Optional[float]) -> None:
        self._expires_at = None if seconds is None else time.monotonic() + seconds

    @classmethod
    def never(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(None)

    @classmethod
    def after_ms(cls, millis: float) -> "Deadline":
        """A deadline ``millis`` milliseconds from now (the HTTP header unit)."""
        return cls(millis / 1000.0)

    def remaining(self) -> Optional[float]:
        """Seconds left (may be negative once expired); ``None`` if unbounded."""
        if self._expires_at is None:
            return None
        return self._expires_at - time.monotonic()

    def expired(self) -> bool:
        """Whether the deadline has passed."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def clamp(self, timeout_s: float) -> float:
        """Bound a step timeout so it cannot outlive the deadline."""
        remaining = self.remaining()
        if remaining is None:
            return timeout_s
        return max(0.0, min(timeout_s, remaining))


# -- engine policies ---------------------------------------------------------

#: Shard execution: a failed or timed-out shard is requeued immediately
#: (no backoff — a fresh worker picks it up) at most twice, i.e. three
#: attempts, before it is marked failed.
SHARD_RETRY_POLICY = RetryPolicy(max_retries=2)

#: Per-shard wall-clock deadline.  A shard whose worker does not answer
#: within this is treated as a worker death and requeued.
SHARD_DEADLINE_S = 600.0

#: Cache namespace-lock acquisition deadline: contention beyond this
#: raises ``CacheLockTimeout`` rather than stalling a scan forever.
LOCK_ACQUIRE_DEADLINE_S = 10.0

#: A lock file older than this is presumed abandoned (its holder died
#: without the kernel releasing a flock, i.e. the O_EXCL fallback path)
#: and is broken.
LOCK_STALE_AFTER_S = 30.0

#: Lock-acquisition polling: start at 20ms, back off to at most 100ms,
#: jittered ±25% so many blocked writers do not retry in lockstep.
#: Unbounded retries — :data:`LOCK_ACQUIRE_DEADLINE_S` bounds the loop.
LOCK_RETRY_POLICY = RetryPolicy(
    max_retries=None,
    base_delay_s=0.02,
    multiplier=1.5,
    max_delay_s=0.1,
    jitter=0.25,
)

# -- serve policies ----------------------------------------------------------

#: Serve hot-reload probe TTL: how long a registry trusts its last
#: manifest stat before re-probing (bounds stat() calls at high QPS).
RELOAD_PROBE_TTL_S = 0.25

#: Admission gate: requests queued per micro-batch lane beyond this are
#: rejected with 429 instead of growing the queue without bound.
DEFAULT_MAX_QUEUE_DEPTH = 256

#: ``Retry-After`` hint (seconds) sent with 429 responses.
DEFAULT_RETRY_AFTER_S = 1

#: Per-connection response-buffer cap: a client that stops reading while
#: responses accumulate past this is closed (slow-reader guard).
DEFAULT_OUTBUF_BUDGET_BYTES = 32 * 1024 * 1024

#: Per-connection in-flight cap: pipelined requests queued behind the one
#: being served beyond this are answered 429 and the connection closed.
DEFAULT_MAX_PIPELINED_REQUESTS = 16
