"""Named failpoints: deterministic fault injection at compiled-in sites.

A *failpoint* is a named guard at an interesting failure boundary::

    from ..faults import failpoint

    def flush(self):
        failpoint("cache.flush.io")   # inert unless activated
        ...

When nothing is activated the guard is one dict lookup and a ``None``
compare — cheap enough for hot paths (the serve benchmarks are recorded
with the guards compiled in).  Activation happens through the
``REPRO_FAILPOINTS`` environment variable (read at import, so spawned
worker processes inherit the configuration) or :func:`configure` (what
the ``--failpoints`` CLI flag calls after exporting the env var).

Spec grammar (entries separated by ``;``, options by ``,``)::

    spec    := entry (";" entry)*
    entry   := name "=" action ("," option)*
    action  := "error" [":" ExcType] | "delay" ":" millis | "kill" | "corrupt"
    option  := "p=" probability | "n=" budget

``error`` raises the named builtin exception type (default
``RuntimeError``; ``OSError`` and subclasses are raised with
``errno == ENOSPC`` to simulate a full disk), ``delay`` sleeps for the
given milliseconds, ``kill`` terminates the process immediately with
:data:`KILL_EXIT_STATUS` (a SIGKILL-style death, bypassing all handlers),
and ``corrupt`` truncates-and-flips bytes at
:func:`corrupting_failpoint` sites (it is inert at plain
:func:`failpoint` sites).  ``p`` fires the action with the given
probability per hit (seeded per failpoint name, so runs are
reproducible); ``n`` caps how many times the action fires in this
process.  Example::

    REPRO_FAILPOINTS="cache.flush.io=error:OSError,n=2;scheduler.worker.body=kill,p=0.5"

Every failpoint name must be a string literal registered at exactly one
call site — lint rule R8 enforces the same discipline R7 applies to
metric names.  The catalogue of compiled-in sites lives in
``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import builtins
import errno
import os
import random
import re
import time
import zlib
from typing import Any, Dict, List, Optional

#: Environment variable holding the failpoint spec; read once at import
#: (worker processes spawned with a copy of the environment re-read it)
#: and re-read by :func:`configure_from_env`.
FAILPOINTS_ENV = "REPRO_FAILPOINTS"

#: Exit status of the ``kill`` action: 128 + SIGKILL(9), the status a
#: genuinely SIGKILLed worker reports, so supervisors cannot tell the
#: injected death from the real thing.
KILL_EXIT_STATUS = 137

#: Failpoint names are dotted lowercase words (``subsystem.site.kind``).
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

_ACTIONS = ("error", "delay", "kill", "corrupt")


class FailpointSpecError(ValueError):
    """Raised when a ``REPRO_FAILPOINTS`` / ``--failpoints`` spec is malformed."""


class _ActiveFailpoint:
    """Parsed, stateful activation of one failpoint name."""

    __slots__ = ("name", "action", "arg", "probability", "budget", "hits", "fired", "_rng")

    def __init__(
        self,
        name: str,
        action: str,
        arg: Optional[str],
        probability: float,
        budget: Optional[int],
    ) -> None:
        self.name = name
        self.action = action
        self.arg = arg
        self.probability = probability
        self.budget = budget
        self.hits = 0
        self.fired = 0
        # Seeded from the name (not the process), so a given spec fires
        # the same hits in every run — chaos tests stay reproducible.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def describe(self) -> Dict[str, Any]:
        """JSON-ready summary for ``/healthz`` and diagnostics."""
        return {
            "name": self.name,
            "action": self.action,
            "arg": self.arg,
            "probability": self.probability,
            "budget": self.budget,
            "hits": self.hits,
            "fired": self.fired,
        }

    def should_fire(self) -> bool:
        """Count one hit and apply the probability and budget gates."""
        self.hits += 1
        if self.budget is not None and self.fired >= self.budget:
            return False
        if self.probability < 1.0 and self._rng.random() >= self.probability:
            return False
        self.fired += 1
        return True

    def trigger(self) -> None:
        """Apply a non-``corrupt`` action: raise, sleep, or die."""
        if self.action == "error":
            raise self._make_error()
        if self.action == "delay":
            time.sleep(float(self.arg or 0.0) / 1000.0)
        elif self.action == "kill":
            os._exit(KILL_EXIT_STATUS)
        # "corrupt" is inert here: it only acts at corrupting sites.

    def _make_error(self) -> BaseException:
        """Build the injected exception (OSErrors carry ENOSPC)."""
        exc_type = _resolve_exception(self.arg or "RuntimeError")
        message = f"failpoint {self.name}: injected {exc_type.__name__}"
        if issubclass(exc_type, OSError):
            # The canonical "disk full" shape: errno + strerror, exactly
            # what a real ENOSPC from the filesystem looks like.
            return exc_type(errno.ENOSPC, message)
        return exc_type(message)


def _resolve_exception(name: str) -> type:
    """Resolve an ``error:<ExcType>`` argument to a builtin exception type."""
    exc_type = getattr(builtins, name, None)
    if not isinstance(exc_type, type) or not issubclass(exc_type, BaseException):
        raise FailpointSpecError(
            f"unknown exception type {name!r} in failpoint spec "
            "(must name a builtin exception, e.g. OSError, TimeoutError)"
        )
    return exc_type


def parse_spec(spec: str) -> Dict[str, _ActiveFailpoint]:
    """Parse one spec string into per-name activations (fail-fast on errors)."""
    active: Dict[str, _ActiveFailpoint] = {}
    for raw_entry in spec.split(";"):
        entry = raw_entry.strip()
        if not entry:
            continue
        name, sep, rest = entry.partition("=")
        name = name.strip()
        if not sep or not rest.strip():
            raise FailpointSpecError(
                f"failpoint entry {entry!r} must look like name=action[:arg][,p=..][,n=..]"
            )
        if not _NAME_RE.match(name):
            raise FailpointSpecError(
                f"failpoint name {name!r} must be dotted lowercase words "
                "(e.g. cache.flush.io)"
            )
        if name in active:
            raise FailpointSpecError(f"failpoint {name!r} appears twice in the spec")
        fields = [field.strip() for field in rest.split(",")]
        action_field = fields[0]
        action, _, arg = action_field.partition(":")
        action = action.strip()
        arg = arg.strip() or None
        if action not in _ACTIONS:
            raise FailpointSpecError(
                f"unknown failpoint action {action!r} for {name!r} "
                f"(one of {', '.join(_ACTIONS)})"
            )
        if action == "error":
            _resolve_exception(arg or "RuntimeError")  # validate now, not at the site
        elif action == "delay":
            try:
                if float(arg or "") < 0.0:
                    raise ValueError
            except (TypeError, ValueError):
                raise FailpointSpecError(
                    f"failpoint {name!r}: delay needs a non-negative millisecond "
                    f"argument, got {arg!r}"
                ) from None
        elif arg is not None:
            raise FailpointSpecError(
                f"failpoint {name!r}: action {action!r} takes no argument"
            )
        probability = 1.0
        budget: Optional[int] = None
        for option in fields[1:]:
            key, opt_sep, value = option.partition("=")
            key = key.strip()
            value = value.strip()
            if not opt_sep:
                raise FailpointSpecError(
                    f"failpoint {name!r}: option {option!r} must be p=<float> or n=<int>"
                )
            if key == "p":
                try:
                    probability = float(value)
                except ValueError:
                    raise FailpointSpecError(
                        f"failpoint {name!r}: p needs a float, got {value!r}"
                    ) from None
                if not 0.0 <= probability <= 1.0:
                    raise FailpointSpecError(
                        f"failpoint {name!r}: p must be in [0, 1], got {probability}"
                    )
            elif key == "n":
                try:
                    budget = int(value)
                except ValueError:
                    raise FailpointSpecError(
                        f"failpoint {name!r}: n needs an int, got {value!r}"
                    ) from None
                if budget < 0:
                    raise FailpointSpecError(
                        f"failpoint {name!r}: n must be non-negative, got {budget}"
                    )
            else:
                raise FailpointSpecError(
                    f"failpoint {name!r}: unknown option {key!r} (use p= or n=)"
                )
        active[name] = _ActiveFailpoint(name, action, arg, probability, budget)
    return active


#: The live activation table.  Empty (the common case) means every guard
#: is a single failed dict lookup.
_ACTIVE: Dict[str, _ActiveFailpoint] = {}


def configure(spec: Optional[str]) -> None:
    """Replace the activation table from a spec string (``None``/"" clears it).

    Raises :class:`FailpointSpecError` without touching the current table
    when the spec is malformed, so a typo cannot half-activate injection.
    """
    parsed = parse_spec(spec) if spec else {}
    _ACTIVE.clear()
    _ACTIVE.update(parsed)


def configure_from_env() -> None:
    """(Re-)read the activation table from :data:`FAILPOINTS_ENV`."""
    configure(os.environ.get(FAILPOINTS_ENV))


def failpoint(name: str) -> None:
    """The guard compiled into production code at a named injection site.

    Inert (one dict lookup) unless ``name`` is activated, in which case
    the configured action runs — possibly raising, sleeping, or killing
    the process.  ``name`` must be a string literal unique to one call
    site (lint rule R8).
    """
    spec = _ACTIVE.get(name)
    if spec is None:
        return
    if spec.should_fire():
        spec.trigger()


def corrupting_failpoint(name: str, data: bytes) -> bytes:
    """A guard on a byte stream: may corrupt ``data`` before it is used.

    With a ``corrupt`` action active for ``name`` the returned bytes are
    truncated and bit-flipped (deterministically); any other active
    action behaves exactly like :func:`failpoint`.  Inert guards return
    ``data`` unchanged.
    """
    spec = _ACTIVE.get(name)
    if spec is None:
        return data
    if not spec.should_fire():
        return data
    if spec.action != "corrupt":
        spec.trigger()
        return data
    return _corrupt_bytes(data)


def _corrupt_bytes(data: bytes) -> bytes:
    """Deterministic corruption: keep the front half, flip its first byte."""
    if not data:
        return b"\xffcorrupt"
    kept = bytearray(data[: max(1, len(data) // 2)])
    kept[0] ^= 0xFF
    return bytes(kept)


def failpoints_active() -> bool:
    """Whether any failpoint is currently activated in this process."""
    return bool(_ACTIVE)


def active_failpoints() -> List[Dict[str, Any]]:
    """Describe every activated failpoint (the ``/healthz`` ``faults`` list)."""
    return [_ACTIVE[name].describe() for name in sorted(_ACTIVE)]


# Import-time activation: worker processes (fork or spawn) and plain CLI
# runs pick the spec up from the environment without extra plumbing.
configure_from_env()
