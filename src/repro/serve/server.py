"""The long-lived scan service: a threaded stdlib HTTP server over the engine.

``python -m repro serve --artifact <dir>`` starts one process that keeps a
trained detector resident (:class:`repro.serve.registry.ModelRegistry`),
funnels every ``POST /scan`` through the micro-batching queue
(:class:`repro.serve.batching.MicroBatcher`) so concurrent requests share
one vectorized forward pass and one cache flush, and exposes the standard
operational endpoints:

``POST /scan``
    Scan inline HDL sources and/or server-side paths; returns per-design
    triage records identical to a ``python -m repro scan`` run.
``GET /healthz``
    Liveness + the resident model's fingerprint and the service version.
``GET /metrics``
    Request counts, micro-batch sizes, latency percentiles, cache hit rate.
``POST /reload``
    Force a model hot-reload check (recalibration without downtime).

Everything is stdlib (``http.server`` + ``threading``): one handler thread
per connection, one batch worker owning the engine, graceful shutdown that
drains in-flight batches and flushes the result cache.  See
``docs/SERVING.md`` for the full API reference.
"""

from __future__ import annotations

import json
import logging
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .. import __version__
from ..engine.scan import ScanReport, ScanSource, collect_sources
from ..features.image import DEFAULT_IMAGE_SIZE
from .batching import (
    DEFAULT_BATCH_WINDOW_S,
    DEFAULT_MAX_BATCH,
    BatcherClosed,
    MicroBatchError,
    MicroBatcher,
)
from .metrics import ServiceMetrics
from .registry import ModelRegistry

logger = logging.getLogger(__name__)

#: Default bind host — loopback; expose deliberately, not by accident.
DEFAULT_HOST = "127.0.0.1"

#: Default port of the scan service (0 picks a free ephemeral port).
DEFAULT_PORT = 8731

#: Largest accepted request body (64 MiB of HDL is far beyond any design).
MAX_BODY_BYTES = 64 * 1024 * 1024


class RequestError(ValueError):
    """A client-side problem with a request (maps to HTTP 400)."""


def _json_bytes(payload: Dict[str, Any]) -> bytes:
    """Serialise a response payload: compact separators, deterministic keys.

    Compact (no indent) because responses are on the hot path — the same
    record dicts as the CLI's results JSON, just without pretty-printing.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def parse_scan_payload(
    payload: Any, allow_paths: bool = True
) -> Tuple[List[ScanSource], Optional[float]]:
    """Validate a ``POST /scan`` body into sources + confidence.

    The body is a JSON object with any combination of ``sources`` (a list
    of ``{"name": ..., "source": "<verilog>"}`` objects — ``name`` is
    optional) and ``paths`` (server-side files/directories, resolved like
    CLI scan inputs), plus an optional ``confidence`` level.  Raises
    :class:`RequestError` with a client-actionable message on any shape
    problem.
    """
    if not isinstance(payload, dict):
        raise RequestError("request body must be a JSON object")
    unknown = set(payload) - {"sources", "paths", "confidence"}
    if unknown:
        raise RequestError(f"unknown request fields: {sorted(unknown)}")
    sources: List[ScanSource] = []
    raw_sources = payload.get("sources", [])
    if not isinstance(raw_sources, list):
        raise RequestError("'sources' must be a list")
    for i, item in enumerate(raw_sources):
        if not isinstance(item, dict) or not isinstance(item.get("source"), str):
            raise RequestError(
                f"sources[{i}] must be an object with a string 'source' field"
            )
        name = item.get("name", f"inline_{i}")
        if not isinstance(name, str):
            raise RequestError(f"sources[{i}].name must be a string")
        sources.append(ScanSource(name=name, source=item["source"]))
    raw_paths = payload.get("paths", [])
    if not isinstance(raw_paths, list) or not all(
        isinstance(p, str) for p in raw_paths
    ):
        raise RequestError("'paths' must be a list of strings")
    if raw_paths:
        if not allow_paths:
            raise RequestError("server-side paths are disabled (--no-paths)")
        try:
            sources.extend(collect_sources(raw_paths))
        except (FileNotFoundError, OSError) as exc:
            raise RequestError(str(exc)) from exc
    confidence = payload.get("confidence")
    if confidence is not None:
        if not isinstance(confidence, (int, float)) or not 0.0 < confidence < 1.0:
            raise RequestError("'confidence' must be a number in (0, 1)")
        confidence = float(confidence)
    if not sources:
        raise RequestError("request contained no sources (use 'sources' or 'paths')")
    return sources, confidence


class ScanService:
    """Everything behind one serving process: registry, batcher, HTTP server.

    Parameters
    ----------
    artifact:
        Detector artifact directory to serve (loaded at construction, so a
        broken artifact fails fast instead of on the first request).
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    batch_window_s:
        Micro-batch window — how long the batch worker holds a batch open
        for stragglers after the first request arrives.
    max_batch:
        Designs per micro-batch (the forward-pass batch-size cap).
    cache_dir:
        Sharded result-cache root (``None`` serves uncached).
    feature_cache:
        Attach the model-independent feature tier under
        ``<cache_dir>/features``.  Because the tier is keyed by source
        content (not model fingerprint), a recalibration + hot reload
        keeps it warm: post-reload scans of known designs skip HDL
        parsing and feature extraction entirely and pay only the forward
        pass.  Ignored when ``cache_dir`` is ``None``.
    feature_store_dir:
        Explicit feature-tier root overriding the convention above (also
        enables the tier without a result cache).
    workers:
        Feature-extraction processes per batch scan (default 1: on a
        serving box the batch worker owns a single core's worth of work).
    allow_paths:
        Whether ``POST /scan`` may reference server-side paths.
    flush_every:
        Flush the result cache once at least this many fresh designs have
        accumulated since the last flush (always off the response critical
        path, and always on shutdown).  A crash loses at most this many
        cached verdicts — they are verdicts a rescan reproduces, so the
        serving default trades a bounded amount of cache warmth for not
        paying shard-file writes per batch.
    backend:
        Inference compute backend for every forward pass the service runs
        (``numpy`` golden float64, ``fused_f32``, ``int8``); reported by
        ``GET /metrics`` as ``backend`` / ``backend_dtype``.
    """

    def __init__(
        self,
        artifact: Union[str, Path],
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
        max_batch: int = DEFAULT_MAX_BATCH,
        cache_dir: Optional[Union[str, Path]] = None,
        feature_cache: bool = True,
        feature_store_dir: Optional[Union[str, Path]] = None,
        workers: Optional[int] = 1,
        image_size: int = DEFAULT_IMAGE_SIZE,
        allow_paths: bool = True,
        flush_every: int = 128,
        backend: str = "numpy",
    ) -> None:
        self.artifact_path = Path(artifact)
        self.workers = workers
        self.allow_paths = allow_paths
        self.flush_every = max(1, flush_every)
        self.backend = backend
        # Fresh (non-cache-hit) designs since the last cache flush; only
        # the batch worker touches it, so no lock is needed.
        self._unflushed_designs = 0
        self.metrics = ServiceMetrics()
        self.registry = ModelRegistry(
            cache_dir=cache_dir,
            image_size=image_size,
            feature_cache=feature_cache,
            feature_store_dir=feature_store_dir,
            backend=backend,
        )
        # Load at construction so a broken artifact fails fast, and keep
        # the fingerprint in a plain attribute the per-request path can
        # read without a registry lookup (updated on hot reload).
        self._fingerprint = self.registry.get(self.artifact_path).fingerprint
        # The HTTP server binds before the batcher starts its worker
        # thread: a bind failure (port in use) must not leak a thread.
        self._httpd = _ScanHTTPServer((host, port), _ScanRequestHandler, self)
        self.batcher = MicroBatcher(
            self._scan_batch,
            batch_window_s=batch_window_s,
            max_batch=max_batch,
            metrics=self.metrics,
            # Flush the result cache after responses go out, not before:
            # requesters never wait on disk (see ``flush_every``).
            after_batch=self._after_batch,
        )
        self._thread: Optional[threading.Thread] = None
        self._shutdown_lock = threading.Lock()
        self._closed = False

    # -- addressing ----------------------------------------------------------
    @property
    def host(self) -> str:
        """The bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with ``port=0``)."""
        return self._httpd.server_address[1]

    # -- scanning ------------------------------------------------------------
    def _scan_batch(
        self, sources: List[ScanSource], confidence: Optional[float]
    ) -> ScanReport:
        """The batch worker's scan callable: hot-reload probe, then engine.

        The staleness probe runs here — between batches, never mid-batch —
        so an in-flight batch always finishes on the model it started with.
        """
        entry, reloaded = self.registry.maybe_reload(self.artifact_path)
        if reloaded:
            self.metrics.observe_reload()
            self._fingerprint = entry.fingerprint
            logger.info("hot-reloaded model: fingerprint %s", entry.fingerprint[:12])
        report = entry.engine.scan_sources(
            sources, workers=self.workers, confidence=confidence, flush_cache=False
        )
        if report.n_feature_hits:
            self.metrics.observe_feature_hits(report.n_feature_hits)
        # Stamp which model produced these records; the response reports
        # this rather than "the currently resident model", which a hot
        # reload may have swapped by the time the response is built.
        report.fingerprint = entry.fingerprint  # type: ignore[attr-defined]
        self._unflushed_designs += report.n_scanned
        return report

    def _after_batch(self) -> None:
        """Worker hook after each batch's responses went out: maybe flush.

        Runs on the batch worker thread between batches, so the flush
        never delays a response; the ``flush_every`` threshold keeps a
        flush from paying one shard-file write per design.
        """
        if self._unflushed_designs >= self.flush_every:
            self._unflushed_designs = 0
            self.registry.flush_caches()

    def handle_scan(self, payload: Any) -> Dict[str, Any]:
        """Serve one ``POST /scan`` body; returns the response payload."""
        sources, confidence = parse_scan_payload(payload, allow_paths=self.allow_paths)
        t_start = time.perf_counter()
        result = self.batcher.submit(sources, confidence=confidence)
        self.metrics.observe_scan(
            n_designs=len(sources),
            n_cache_hits=result.n_cache_hits,
            n_errors=result.n_errors,
            seconds=time.perf_counter() - t_start,
        )
        return {
            "fingerprint": result.fingerprint or self._fingerprint,
            "confidence_level": result.confidence_level,
            "n_designs": len(sources),
            "n_cache_hits": result.n_cache_hits,
            "n_errors": result.n_errors,
            "records": [record.to_dict() for record in result.records],
            "batch": {
                "designs": result.batch_designs,
                "requests": result.batch_requests,
            },
        }

    # -- operational endpoints ----------------------------------------------
    def handle_healthz(self) -> Dict[str, Any]:
        """Serve ``GET /healthz``: liveness, version, resident model."""
        entry = self.registry.get(self.artifact_path)
        return {
            "status": "ok",
            "version": __version__,
            "model": entry.describe(),
            "batching": {
                "window_ms": self.batcher.batch_window_s * 1000.0,
                "max_batch": self.batcher.max_batch,
            },
            "uptime_seconds": self.metrics.uptime_seconds(),
        }

    def handle_metrics(self) -> Dict[str, Any]:
        """Serve ``GET /metrics``: counters/percentiles plus the backend.

        The snapshot is augmented with ``backend`` (the active compute
        backend's name) and ``backend_dtype`` (the dtype its forward pass
        runs in) so operators can tell which inference path produced the
        reported latencies.
        """
        from ..nn.backend import get_backend

        snapshot = self.metrics.snapshot()
        snapshot["backend"] = self.backend
        snapshot["backend_dtype"] = get_backend(self.backend).dtype
        return snapshot

    def handle_reload(self) -> Dict[str, Any]:
        """Serve ``POST /reload``: force a fingerprint check right now."""
        entry, reloaded = self.registry.reload(self.artifact_path)
        if reloaded:
            self.metrics.observe_reload()
            self._fingerprint = entry.fingerprint
            logger.info("reloaded model on request: %s", entry.fingerprint[:12])
        return {"reloaded": reloaded, "model": entry.describe(), "version": __version__}

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "ScanService":
        """Serve in a background thread; returns self (for chaining)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-http",
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` is called."""
        self._httpd.serve_forever(poll_interval=0.1)

    def shutdown(self) -> None:
        """Graceful shutdown: stop accepting, drain batches, flush caches.

        Safe to call from any thread (including a signal-triggered one)
        and idempotent.  Ordering matters: the accept loop stops first so
        no new work arrives, the batcher then drains every queued request
        (their handler threads finish writing responses), the result
        caches are flushed — *before* the handler join, so durability is
        not held hostage to an idle keep-alive connection sitting in its
        read timeout — and only then are the handler threads joined and
        the socket closed.
        """
        with self._shutdown_lock:
            if self._closed:
                return
            self._closed = True
        self._httpd.shutdown()  # stop the accept loop
        self._httpd.closing = True  # handlers stop reusing connections
        drained = self.batcher.close()  # drain queued scans (the only cache writer)
        if drained:
            self.registry.flush_caches()
        else:
            # The worker is still mid-drain after the join timeout;
            # flushing now would race its cache writes.  Skip — losing
            # cached verdicts (a rescan recomputes them) beats corrupting
            # the flush.
            logger.warning(
                "batch worker did not drain in time; skipping shutdown cache flush"
            )
        # Grace period for handlers to finish writing in-flight responses,
        # then force-close whatever is left (idle keep-alive connections
        # parked in their read timeout would otherwise pin the join).
        deadline = time.monotonic() + 2.0
        while self._httpd.open_connection_count() and time.monotonic() < deadline:
            time.sleep(0.02)
        self._httpd.force_close_connections()
        self._httpd.server_close()  # join handler threads, release the socket
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "ScanService":
        """Context-manager entry: start serving in the background."""
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: graceful shutdown."""
        self.shutdown()


class _ScanHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows its :class:`ScanService`.

    Handler threads are non-daemonic and joined on ``server_close`` — that
    join (after the batcher drained) is what makes shutdown *graceful*: a
    request that was already accepted always gets its response before the
    process exits.  Open connections are tracked so shutdown can tell
    keep-alive clients to go away: handlers stop reusing connections once
    ``closing`` is set, and connections still open after the grace period
    are force-closed (otherwise one idle keep-alive poller would pin the
    join until its read timeout — or forever, if it keeps polling).
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True
    # socketserver's default listen backlog is 5; a burst of concurrent
    # clients connecting at once would overflow it and stall on SYN
    # retransmits.
    request_queue_size = 128

    def __init__(
        self,
        address: Tuple[str, int],
        handler: type,
        service: "ScanService",
    ) -> None:
        self.service = service
        self.closing = False
        self._conn_lock = threading.Lock()
        self._connections: set = set()
        super().__init__(address, handler)

    def track_connection(self, connection: Any) -> None:
        """Remember an open connection (called from handler setup)."""
        with self._conn_lock:
            self._connections.add(connection)

    def untrack_connection(self, connection: Any) -> None:
        """Forget a finished connection (called from handler teardown)."""
        with self._conn_lock:
            self._connections.discard(connection)

    def open_connection_count(self) -> int:
        """How many client connections are currently open."""
        with self._conn_lock:
            return len(self._connections)

    def force_close_connections(self) -> None:
        """Unblock every remaining handler by shutting its socket down.

        A handler parked in ``readline`` on an idle keep-alive connection
        wakes immediately with EOF and exits its loop (``closing`` makes
        it non-reusable), letting ``server_close``'s join complete.
        """
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # already gone

    def handle_error(self, request: Any, client_address: Any) -> None:
        """Log handler errors via ``logging`` (quietly during shutdown)."""
        if self.closing:
            # Force-closed sockets make in-flight writes raise; that is
            # the mechanism, not a bug worth a traceback.
            logger.debug("connection %s closed during shutdown", client_address)
            return
        logger.exception("error handling request from %s", client_address)


class _HeaderDict(dict):
    """Case-insensitive read view over headers parsed by the fast path."""

    def get(self, key: str, default: Any = None) -> Any:
        """Look a header up regardless of the caller's capitalisation."""
        return dict.get(self, key.lower(), default)


class _ScanRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the service; all bodies are JSON."""

    server: _ScanHTTPServer
    protocol_version = "HTTP/1.1"  # keep-alive: clients reuse connections
    timeout = 60.0
    # Small request/response writes must not sit in Nagle's buffer waiting
    # for a delayed ACK (a classic ~40ms stall per round trip on loopback).
    disable_nagle_algorithm = True

    # -- plumbing ------------------------------------------------------------
    def setup(self) -> None:
        """Register the connection so shutdown can reach it."""
        super().setup()
        self.server.track_connection(self.connection)

    def finish(self) -> None:
        """Deregister the connection before the stdlib teardown."""
        self.server.untrack_connection(self.connection)
        super().finish()

    def handle_one_request(self) -> None:
        """Minimal request parsing for the narrow HTTP subset served here.

        ``BaseHTTPRequestHandler`` routes headers through ``email.parser``,
        which costs ~0.1ms per request — measurable at the request rates
        the micro-batching service targets.  This override parses the
        request line and headers directly, supporting exactly what the
        service (and its clients) speak: ``Content-Length``-framed JSON
        bodies and HTTP/1.1 keep-alive.  Anything malformed closes the
        connection rather than guessing.
        """
        try:
            raw_requestline = self.rfile.readline(65537)
            if not raw_requestline or len(raw_requestline) > 65536:
                self.close_connection = True
                return
            self.raw_requestline = raw_requestline
            self.requestline = raw_requestline.decode("latin-1").rstrip("\r\n")
            words = raw_requestline.split()
            if len(words) != 3:
                self.close_connection = True
                return
            command = words[0].decode("latin-1")
            self.command = command
            self.path = words[1].decode("latin-1")
            self.request_version = version = words[2].decode("latin-1")
            if not version.startswith("HTTP/"):
                self.close_connection = True
                return
            headers: Dict[str, str] = {}
            header_lines = 0
            while True:
                line = self.rfile.readline(65537)
                header_lines += 1
                if len(line) > 65536 or header_lines > 100:
                    # Same bounds the stdlib parser enforces (counting
                    # header *lines*, so repeated names cannot dodge the
                    # cap): an over-long line or an unbounded header
                    # stream is hostile input, not something to buffer.
                    self.close_connection = True
                    return
                if line in (b"\r\n", b"\n", b""):
                    break
                key, _, value = line.partition(b":")
                headers[key.decode("latin-1").strip().lower()] = value.decode(
                    "latin-1"
                ).strip()
            self.headers = _HeaderDict(headers)  # type: ignore[assignment]
            self.close_connection = (
                version == "HTTP/1.0"
                or headers.get("connection", "").lower() == "close"
            )
            if headers.get("expect", "").lower() == "100-continue":
                # curl (and others) withhold bodies >1 KiB until the
                # interim 100 arrives; not answering would stall every
                # realistic-size scan request by the client's Expect
                # timeout (~1s for curl).
                self.send_response_only(100)
                self.end_headers()
            method = getattr(self, f"do_{command}", None)
            if method is None or not command.isalpha():
                # The declared body (if any) was never consumed; do not
                # let the next request on this connection read stale
                # bytes.
                self.close_connection = True
                self._respond_error(501, f"unsupported method: {command}")
                return
            method()
            self.wfile.flush()
            if self.server.closing:
                # Shutdown in progress: answer the request that was
                # already in flight, then stop reusing the connection.
                self.close_connection = True
        except TimeoutError:
            self.close_connection = True

    def log_message(self, format: str, *args: Any) -> None:
        """Route per-request lines to ``logging`` instead of stderr."""
        logger.debug("%s - %s", self.address_string(), format % args)

    def _respond(self, status: int, payload: Dict[str, Any]) -> None:
        """Write one JSON response with correct framing for keep-alive."""
        body = _json_bytes(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_error(self, status: int, message: str) -> None:
        self._respond(status, {"error": message})

    def _read_json_body(self) -> Any:
        """Parse the request body as JSON (raises :class:`RequestError`).

        When the body is rejected *without being consumed* (bad or
        oversized ``Content-Length``), the connection is marked for close
        — leaving unread bytes on a keep-alive stream would corrupt the
        next request on it.
        """
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError) as exc:
            self.close_connection = True  # body length unknown: cannot drain
            raise RequestError("invalid Content-Length header") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            self.close_connection = True  # body left unread on the socket
            raise RequestError(f"request body must be 0..{MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RequestError(f"request body is not valid JSON: {exc}") from exc

    # -- routing -------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Dispatch ``GET /healthz`` and ``GET /metrics``."""
        service = self.server.service
        route = self.path.split("?", 1)[0]
        if route == "/healthz":
            service.metrics.observe_request(route)
            self._respond(200, service.handle_healthz())
        elif route == "/metrics":
            service.metrics.observe_request(route)
            self._respond(200, service.handle_metrics())
        else:
            service.metrics.observe_request(route, error=True)
            self._respond_error(404, f"unknown route: GET {route}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Dispatch ``POST /scan`` and ``POST /reload``.

        The body is always consumed (even for routes that ignore it):
        leaving unread bytes on a keep-alive connection would corrupt the
        next request on it.
        """
        service = self.server.service
        route = self.path.split("?", 1)[0]
        try:
            body = self._read_json_body()
        except RequestError as exc:
            service.metrics.observe_request(route, error=True)
            self._respond_error(400, str(exc))
            return
        if route == "/scan":
            self._handle_scan(service, route, body)
        elif route == "/reload":
            try:
                payload = service.handle_reload()
            except Exception as exc:
                service.metrics.observe_request(route, error=True)
                self._respond_error(500, f"reload failed: {exc}")
                return
            service.metrics.observe_request(route)
            self._respond(200, payload)
        else:
            service.metrics.observe_request(route, error=True)
            self._respond_error(404, f"unknown route: POST {route}")

    def _handle_scan(self, service: ScanService, route: str, body: Any) -> None:
        """``POST /scan`` with the error-to-status mapping in one place."""
        try:
            payload = service.handle_scan(body)
        except RequestError as exc:
            service.metrics.observe_request(route, error=True)
            self._respond_error(400, str(exc))
        except BatcherClosed as exc:
            service.metrics.observe_request(route, error=True)
            self._respond_error(503, str(exc))
        except (MicroBatchError, TimeoutError) as exc:
            service.metrics.observe_request(route, error=True)
            self._respond_error(500, str(exc))
        except Exception as exc:  # never leak a traceback to the socket
            logger.exception("unhandled error serving POST /scan")
            service.metrics.observe_request(route, error=True)
            self._respond_error(500, f"{type(exc).__name__}: {exc}")
        else:
            service.metrics.observe_request(route)
            self._respond(200, payload)
