"""The long-lived scan service: multi-model routing behind one HTTP process.

``python -m repro serve --artifact NAME=DIR ...`` starts one process that
keeps any number of trained detectors resident (one
:class:`repro.serve.registry.ModelRegistry`, one shared model-independent
feature store), gives each model its own micro-batching queue
(:class:`repro.serve.batching.MicroBatcher` — concurrent requests for the
same model share one vectorized forward pass), and routes every request
by its ``model`` field or ``X-Repro-Model`` header.  The standard
endpoints:

``POST /scan``
    Scan inline HDL sources and/or server-side paths with the requested
    model (default: the current champion); returns per-design triage
    records identical to a ``python -m repro scan`` run of that model.
``GET /healthz``
    Liveness + every resident model's fingerprint and the champion;
    ``status`` degrades to ``"degraded"`` while any model's conformal
    coverage-drift alarm is raised (see :mod:`repro.obs.drift`).
``GET /metrics``
    Request counts (total and per model), micro-batch sizes, latency
    percentiles, cache hit rate, rollout status and per-model coverage
    drift — JSON by default; ``?format=prometheus`` (or an ``Accept``
    header asking for ``text/plain``) selects the Prometheus text
    exposition rendered from :data:`repro.obs.metrics.REGISTRY`.
``POST /reload``
    Force a hot-reload check for all models (or one, via ``{"model":
    ...}``) — recalibration without downtime.
``POST /promote``
    Force-promote the challenger to champion right now.

**Champion–challenger rollout** (``--shadow NAME``): the champion keeps
answering every default-routed request while the challenger shadow-scans
a sampled slice of the same traffic; once its triage-agreement rate
clears the configured threshold over enough designs it is auto-promoted
to champion (see :mod:`repro.serve.rollout`).

Two front-ends serve the HTTP (``frontend=``): the default
``"eventloop"`` — a single-threaded :mod:`selectors` reactor
(:mod:`repro.serve.eventloop`) that holds thousands of keep-alive
connections without a thread apiece and completes scans asynchronously —
and ``"threaded"``, the classic stdlib thread-per-connection server.
Both keep graceful drain (every accepted request is answered before the
process exits) and hot reload.  See ``docs/SERVING.md`` for the full API
reference.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from .. import __version__
from ..engine import scheduler as _scheduler  # noqa: F401 - registers repro_engine_* metric families
from ..engine.scan import ScanReport, ScanSource, collect_sources
from ..faults import (
    DEFAULT_MAX_PIPELINED_REQUESTS,
    DEFAULT_MAX_QUEUE_DEPTH,
    DEFAULT_OUTBUF_BUDGET_BYTES,
    DEFAULT_RETRY_AFTER_S,
    Deadline,
    active_failpoints,
    failpoint,
)
from ..features.image import DEFAULT_IMAGE_SIZE
from ..obs.drift import (
    DEFAULT_CLEAR_MARGIN,
    DEFAULT_MIN_OBSERVATIONS,
    DEFAULT_TRIP_MARGIN,
    DEFAULT_WINDOW,
    STATE_ALARMING,
    CoverageDriftMonitor,
)
from ..obs.metrics import REGISTRY
from ..obs.tracing import Tracer, trace_span
from .batching import (
    DEADLINE_ERROR,
    DEFAULT_BATCH_WINDOW_S,
    DEFAULT_MAX_BATCH,
    BatcherClosed,
    BatcherOverloaded,
    BatchResult,
    DeadlineExceeded,
    MicroBatchError,
    MicroBatcher,
)
from .eventloop import (
    DEFAULT_IDLE_TIMEOUT_S,
    DEFAULT_REQUEST_TIMEOUT_S,
    EventLoopFrontend,
    ParsedRequest,
    RawResponse,
)
from .metrics import ServiceMetrics
from .registry import ModelRegistry
from .rollout import (
    DEFAULT_MIN_SHADOW_DESIGNS,
    DEFAULT_PROMOTE_THRESHOLD,
    DEFAULT_SHADOW_SAMPLE,
    STATE_PROMOTED,
    RolloutController,
)

logger = logging.getLogger(__name__)

#: Default bind host — loopback; expose deliberately, not by accident.
DEFAULT_HOST = "127.0.0.1"

#: Default port of the scan service (0 picks a free ephemeral port).
DEFAULT_PORT = 8731

#: Largest accepted request body (64 MiB of HDL is far beyond any design).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: The default model name when the service is started with one artifact.
DEFAULT_MODEL_NAME = "default"

#: Routing header naming the model a request should be scanned with
#: (per-tenant routing without touching the JSON body).
MODEL_HEADER = "x-repro-model"

#: Deadline header: how many milliseconds the client is still willing to
#: wait for its ``POST /scan`` answer.  A request whose deadline expires
#: while queued is shed with 504 *before* the forward pass — under
#: overload the server spends compute only on answers somebody still
#: wants.
DEADLINE_HEADER = "x-repro-deadline-ms"

# Coverage-drift gauges behind the Prometheus exposition: the observed
# coverage lower bound, the nominal target, and the hysteresis alarm
# state (1 = alarming) — one child per served model.
_COVERAGE_OBSERVED = REGISTRY.gauge(
    "repro_serve_coverage_observed",
    "Observed conformal-coverage lower bound per model (sliding window).",
    labels=("model",),
)
_COVERAGE_NOMINAL = REGISTRY.gauge(
    "repro_serve_coverage_nominal",
    "Nominal conformal-coverage target per model (window mean).",
    labels=("model",),
)
_COVERAGE_ALARM = REGISTRY.gauge(
    "repro_serve_coverage_alarm",
    "1 while the model's coverage-drift alarm is raised, else 0.",
    labels=("model",),
)


class RequestError(ValueError):
    """A client-side problem with a request (maps to HTTP 400)."""


def _json_bytes(payload: Dict[str, Any]) -> bytes:
    """Serialise a response payload: compact separators, deterministic keys.

    Compact (no indent) because responses are on the hot path — the same
    record dicts as the CLI's results JSON, just without pretty-printing.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def _wants_prometheus(path: str, headers: Mapping[str, str]) -> bool:
    """Content negotiation for ``GET /metrics``.

    An explicit ``?format=`` query parameter wins outright
    (``prometheus``/``openmetrics``/``text`` select the text exposition,
    anything else selects JSON); without one, an ``Accept`` header
    mentioning ``text/plain`` or ``openmetrics`` (what Prometheus
    scrapers send) selects the text exposition.  The default stays JSON
    so existing clients never change behaviour.
    """
    query = path.partition("?")[2]
    for part in query.split("&"):
        key, _, value = part.partition("=")
        if key == "format":
            return value.lower() in ("prometheus", "openmetrics", "text")
    accept = (headers.get("accept") or "").lower()
    return "text/plain" in accept or "openmetrics" in accept


def parse_scan_payload(
    payload: Any, allow_paths: bool = True
) -> Tuple[List[ScanSource], Optional[float]]:
    """Validate a ``POST /scan`` body into sources + confidence.

    The body is a JSON object with any combination of ``sources`` (a list
    of ``{"name": ..., "source": "<verilog>"}`` objects — ``name`` is
    optional) and ``paths`` (server-side files/directories, resolved like
    CLI scan inputs), plus an optional ``confidence`` level and an
    optional ``model`` (validated by the routing layer, not here).
    Raises :class:`RequestError` with a client-actionable message on any
    shape problem.
    """
    if not isinstance(payload, dict):
        raise RequestError("request body must be a JSON object")
    unknown = set(payload) - {"sources", "paths", "confidence", "model"}
    if unknown:
        raise RequestError(f"unknown request fields: {sorted(unknown)}")
    sources: List[ScanSource] = []
    raw_sources = payload.get("sources", [])
    if not isinstance(raw_sources, list):
        raise RequestError("'sources' must be a list")
    for i, item in enumerate(raw_sources):
        if not isinstance(item, dict) or not isinstance(item.get("source"), str):
            raise RequestError(
                f"sources[{i}] must be an object with a string 'source' field"
            )
        name = item.get("name", f"inline_{i}")
        if not isinstance(name, str):
            raise RequestError(f"sources[{i}].name must be a string")
        sources.append(ScanSource(name=name, source=item["source"]))
    raw_paths = payload.get("paths", [])
    if not isinstance(raw_paths, list) or not all(
        isinstance(p, str) for p in raw_paths
    ):
        raise RequestError("'paths' must be a list of strings")
    if raw_paths:
        if not allow_paths:
            raise RequestError("server-side paths are disabled (--no-paths)")
        try:
            sources.extend(collect_sources(raw_paths))
        except (FileNotFoundError, OSError) as exc:
            raise RequestError(str(exc)) from exc
    confidence = payload.get("confidence")
    if confidence is not None:
        if not isinstance(confidence, (int, float)) or not 0.0 < confidence < 1.0:
            raise RequestError("'confidence' must be a number in (0, 1)")
        confidence = float(confidence)
    if not sources:
        raise RequestError("request contained no sources (use 'sources' or 'paths')")
    return sources, confidence


class _ModelLane:
    """One served model: its name, artifact path and dedicated batcher.

    Each lane owns exactly one :class:`MicroBatcher` (whose worker thread
    is the lane's engine/cache concurrency guard), so scans for different
    models batch independently and one model's slow batch never holds
    another's queue.  The lanes still share one registry — and through it
    the one model-independent feature store.
    """

    __slots__ = ("name", "path", "fingerprint", "batcher", "unflushed")

    def __init__(self, name: str, path: Path, fingerprint: str) -> None:
        self.name = name
        self.path = path
        self.fingerprint = fingerprint
        self.batcher: MicroBatcher = None  # type: ignore[assignment]
        # Fresh (non-cache-hit) designs since this lane's last cache
        # flush; only the lane's own batch worker touches it.
        self.unflushed = 0


class ScanService:
    """Everything behind one serving process: registry, lanes, front-end.

    Parameters
    ----------
    artifact:
        Single detector artifact directory to serve (the one-model
        shorthand; registered under the name ``"default"``).  Mutually
        exclusive with ``artifacts``.
    artifacts:
        Ordered mapping of model name -> artifact directory for
        multi-model serving.  All models are loaded at construction, so a
        broken artifact fails fast instead of on the first request.
    default_model:
        Which model serves requests that name none (the initial
        *champion*).  Defaults to the first ``artifacts`` entry.
    shadow:
        Model name (must be in ``artifacts``) to run as rollout
        *challenger*: it shadow-scans sampled champion traffic and is
        auto-promoted once its triage-agreement rate clears
        ``promote_threshold`` (see :mod:`repro.serve.rollout`).
    promote_threshold / min_shadow_designs / shadow_sample:
        Rollout gate configuration, passed to
        :class:`repro.serve.rollout.RolloutController`.
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    frontend:
        ``"eventloop"`` (default) — the single-threaded ``selectors``
        reactor — or ``"threaded"`` — stdlib thread-per-connection.
    request_timeout_s / idle_timeout_s:
        Event-loop front-end clocks: how long a partial request may
        dribble in (slow-loris guard) and how long an idle keep-alive
        connection is kept.  Ignored by the threaded front-end, which
        uses its per-read socket timeout.
    batch_window_s:
        Micro-batch window — how long a lane's batch worker holds a batch
        open for stragglers after the first request arrives.
    max_batch:
        Designs per micro-batch (the forward-pass batch-size cap).
    cache_dir:
        Sharded result-cache root (``None`` serves uncached).
    feature_cache:
        Attach the model-independent feature tier under
        ``<cache_dir>/features``.  Because the tier is keyed by source
        content (not model fingerprint), every lane shares it — a design
        scanned by the champion is already feature-warm for the
        challenger's shadow scan, and a recalibration + hot reload keeps
        it warm.  Ignored when ``cache_dir`` is ``None``.
    feature_store_dir:
        Explicit feature-tier root overriding the convention above (also
        enables the tier without a result cache).
    workers:
        Feature-extraction processes per batch scan (default 1: on a
        serving box each lane's batch worker owns a core's worth of work).
    allow_paths:
        Whether ``POST /scan`` may reference server-side paths.
    flush_every:
        Per lane: flush the lane's result cache once at least this many
        fresh designs accumulated since its last flush (always off the
        response critical path, and always on shutdown).
    backend:
        Inference compute backend for every forward pass the service runs
        (``numpy`` golden float64, ``fused_f32``, ``int8``); reported by
        ``GET /metrics`` as ``backend`` / ``backend_dtype``.
    trace_dir:
        When set, the service records structured spans (batch execution
        plus every engine pipeline stage) and appends them as JSONL to
        ``<trace_dir>/serve-<pid>.jsonl`` after each batch's responses
        went out (see :mod:`repro.obs.tracing`).
    drift_window / drift_min_observations / drift_trip_margin /
    drift_clear_margin:
        Per-model conformal coverage-drift monitoring knobs, passed to
        :class:`repro.obs.drift.CoverageDriftMonitor`.  The alarm state
        is surfaced by ``GET /healthz`` (``status: "degraded"``) and the
        coverage gauges of the Prometheus exposition; a hot reload with a
        fresh fingerprint resets the affected model's window.
    max_queue_depth:
        Per-lane admission bound: how many scan requests may wait in a
        lane's micro-batch queue.  The request past the bound is answered
        429 with ``Retry-After`` instead of queueing without limit —
        under sustained overload, memory stays bounded and clients get an
        honest signal.
    max_pipelined_requests / max_outbuf_bytes:
        Event-loop per-connection budgets (pipelined request backlog and
        response out-buffer bytes); see
        :class:`repro.serve.eventloop.EventLoopFrontend`.  Ignored by the
        threaded front-end, whose one-thread-per-connection model already
        serialises each connection.
    """

    def __init__(
        self,
        artifact: Optional[Union[str, Path]] = None,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
        max_batch: int = DEFAULT_MAX_BATCH,
        cache_dir: Optional[Union[str, Path]] = None,
        feature_cache: bool = True,
        feature_store_dir: Optional[Union[str, Path]] = None,
        workers: Optional[int] = 1,
        image_size: int = DEFAULT_IMAGE_SIZE,
        allow_paths: bool = True,
        flush_every: int = 128,
        backend: str = "numpy",
        artifacts: Optional[Mapping[str, Union[str, Path]]] = None,
        default_model: Optional[str] = None,
        shadow: Optional[str] = None,
        promote_threshold: float = DEFAULT_PROMOTE_THRESHOLD,
        min_shadow_designs: int = DEFAULT_MIN_SHADOW_DESIGNS,
        shadow_sample: float = DEFAULT_SHADOW_SAMPLE,
        frontend: str = "eventloop",
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
        idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
        trace_dir: Optional[Union[str, Path]] = None,
        drift_window: int = DEFAULT_WINDOW,
        drift_min_observations: int = DEFAULT_MIN_OBSERVATIONS,
        drift_trip_margin: float = DEFAULT_TRIP_MARGIN,
        drift_clear_margin: float = DEFAULT_CLEAR_MARGIN,
        max_queue_depth: Optional[int] = DEFAULT_MAX_QUEUE_DEPTH,
        max_pipelined_requests: int = DEFAULT_MAX_PIPELINED_REQUESTS,
        max_outbuf_bytes: int = DEFAULT_OUTBUF_BUDGET_BYTES,
    ) -> None:
        if (artifact is None) == (artifacts is None):
            raise ValueError("provide exactly one of 'artifact' or 'artifacts'")
        if artifacts is None:
            artifacts = {DEFAULT_MODEL_NAME: artifact}  # type: ignore[dict-item]
        if not artifacts:
            raise ValueError("'artifacts' must name at least one model")
        if frontend not in ("eventloop", "threaded"):
            raise ValueError(f"unknown frontend {frontend!r}")
        self.workers = workers
        self.allow_paths = allow_paths
        self.flush_every = max(1, flush_every)
        self.backend = backend
        self.frontend = frontend
        self.max_queue_depth = max_queue_depth
        self.metrics = ServiceMetrics()
        self.registry = ModelRegistry(
            cache_dir=cache_dir,
            image_size=image_size,
            feature_cache=feature_cache,
            feature_store_dir=feature_store_dir,
            backend=backend,
        )
        # Load every model at construction (fail fast on broken artifacts)
        # and keep each fingerprint in a lane attribute the per-request
        # path can read without a registry lookup (updated on hot reload).
        self._lanes: Dict[str, _ModelLane] = {}
        self._drift: Dict[str, CoverageDriftMonitor] = {}
        for name, path in artifacts.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"model names must be non-empty strings: {name!r}")
            entry = self.registry.get(Path(path))
            self._lanes[name] = _ModelLane(name, Path(path), entry.fingerprint)
            # One coverage monitor per model, anchored at the model's own
            # default confidence level; per-batch levels override it.
            self._drift[name] = CoverageDriftMonitor(
                float(entry.engine.model.config.confidence_level),
                window=drift_window,
                min_observations=drift_min_observations,
                trip_margin=drift_trip_margin,
                clear_margin=drift_clear_margin,
            )
        self._tracer: Optional[Tracer] = None
        if trace_dir is not None:
            trace_root = Path(trace_dir)
            trace_root.mkdir(parents=True, exist_ok=True)
            self._tracer = Tracer(
                trace_id=f"serve-{os.getpid()}",
                jsonl_path=trace_root / f"serve-{os.getpid()}.jsonl",
            )
        self._champion = default_model or next(iter(self._lanes))
        if self._champion not in self._lanes:
            raise ValueError(f"default model {self._champion!r} is not registered")
        self._champion_lock = threading.Lock()
        self._rollout: Optional[RolloutController] = None
        if shadow is not None:
            if shadow not in self._lanes:
                raise ValueError(f"shadow model {shadow!r} is not registered")
            self._rollout = RolloutController(
                champion=self._champion,
                challenger=shadow,
                promote_threshold=promote_threshold,
                min_shadow_designs=min_shadow_designs,
                sample_rate=shadow_sample,
            )
        # The front-end binds before any batcher starts its worker
        # thread: a bind failure (port in use) must not leak threads.
        self._httpd: Optional[_ScanHTTPServer] = None
        self._loop: Optional[EventLoopFrontend] = None
        if frontend == "threaded":
            self._httpd = _ScanHTTPServer((host, port), _ScanRequestHandler, self)
        else:
            self._loop = EventLoopFrontend(
                host,
                port,
                self,
                max_body_bytes=MAX_BODY_BYTES,
                request_timeout_s=request_timeout_s,
                idle_timeout_s=idle_timeout_s,
                max_outbuf_bytes=max_outbuf_bytes,
                max_pipelined_requests=max_pipelined_requests,
                on_reject=self.metrics.observe_rejected,
            )
        for lane in self._lanes.values():
            lane.batcher = MicroBatcher(
                self._make_scan_fn(lane),
                batch_window_s=batch_window_s,
                max_batch=max_batch,
                metrics=self.metrics,
                max_queue_depth=max_queue_depth,
                # Flush the lane's result cache after responses go out,
                # not before: requesters never wait on disk.
                after_batch=self._make_after_batch(lane),
            )
        self._thread: Optional[threading.Thread] = None
        self._shutdown_lock = threading.Lock()
        self._closed = False

    # -- addressing ----------------------------------------------------------
    @property
    def host(self) -> str:
        """The bound host."""
        if self._loop is not None:
            return self._loop.host
        return self._httpd.server_address[0]  # type: ignore[union-attr]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with ``port=0``)."""
        if self._loop is not None:
            return self._loop.port
        return self._httpd.server_address[1]  # type: ignore[union-attr]

    # -- model accessors -----------------------------------------------------
    @property
    def champion(self) -> str:
        """The model name currently serving default-routed requests."""
        with self._champion_lock:
            return self._champion

    @property
    def models(self) -> List[str]:
        """The registered model names, in registration order."""
        return list(self._lanes)

    @property
    def artifact_path(self) -> Path:
        """The current champion's artifact directory."""
        return self._lanes[self.champion].path

    @property
    def batcher(self) -> MicroBatcher:
        """The current champion's micro-batcher."""
        return self._lanes[self.champion].batcher

    @property
    def rollout(self) -> Optional[RolloutController]:
        """The active rollout controller, ``None`` without ``--shadow``."""
        return self._rollout

    # -- scanning ------------------------------------------------------------
    def _make_scan_fn(
        self, lane: _ModelLane
    ) -> Callable[[List[ScanSource], Optional[float]], ScanReport]:
        """Bind :meth:`_scan_batch` to one lane for its batcher."""

        def scan_fn(
            sources: List[ScanSource], confidence: Optional[float]
        ) -> ScanReport:
            """This lane's batch-scan callable (worker thread only)."""
            return self._scan_batch(lane, sources, confidence)

        return scan_fn

    def _make_after_batch(self, lane: _ModelLane) -> Callable[[], None]:
        """Bind :meth:`_after_batch` to one lane for its batcher."""

        def after_batch() -> None:
            """This lane's post-batch hook (worker thread only)."""
            self._after_batch(lane)

        return after_batch

    def _scan_batch(
        self, lane: _ModelLane, sources: List[ScanSource], confidence: Optional[float]
    ) -> ScanReport:
        """One lane's batch scan: hot-reload probe, then its engine.

        The staleness probe runs here — between batches, never mid-batch —
        so an in-flight batch always finishes on the model it started
        with.  Runs only on the lane's own batch worker thread.
        """
        entry, reloaded = self.registry.maybe_reload(lane.path)
        if reloaded:
            self.metrics.observe_reload()
            lane.fingerprint = entry.fingerprint
            # Fresh calibration: the old coverage window measured the
            # previous artifact, so the drift monitor starts over.
            self._reset_drift(lane.name)
            logger.info(
                "hot-reloaded model %s: fingerprint %s",
                lane.name,
                entry.fingerprint[:12],
            )
        with trace_span(
            self._tracer, "serve/batch", model=lane.name, designs=len(sources)
        ):
            report = entry.engine.scan_sources(
                sources,
                workers=self.workers,
                confidence=confidence,
                flush_cache=False,
                tracer=self._tracer,
            )
        if report.n_feature_hits:
            self.metrics.observe_feature_hits(report.n_feature_hits)
        # Stamp which model produced these records; the response reports
        # this rather than "the currently resident model", which a hot
        # reload may have swapped by the time the response is built.
        report.fingerprint = entry.fingerprint  # type: ignore[attr-defined]
        lane.unflushed += report.n_scanned
        return report

    def _after_batch(self, lane: _ModelLane) -> None:
        """Lane worker hook after a batch's responses went out: maybe flush.

        Flushes only this lane's result cache (its worker is the cache's
        only writer — flushing other lanes' caches here would race their
        workers) plus the shared feature store, which is thread-safe.
        """
        if lane.unflushed >= self.flush_every:
            lane.unflushed = 0
            entry = self.registry.get(lane.path)
            if entry.engine.cache is not None:
                entry.engine.cache.flush()
            if self.registry.feature_store is not None:
                self.registry.feature_store.flush()
        if self._tracer is not None:
            self._tracer.flush()

    # -- coverage drift ------------------------------------------------------
    def _observe_drift(self, model: str, result: BatchResult) -> None:
        """Feed one scan result's verdicts to the model's coverage monitor.

        Updates the Prometheus coverage gauges afterwards and logs every
        alarm transition — the tripped state itself lives in the monitor
        and surfaces through ``/healthz`` and ``/metrics``.
        """
        monitor = self._drift.get(model)
        if monitor is None:
            return
        transition = monitor.observe_verdicts(
            (record.verdict for record in result.records),
            nominal=result.confidence_level,
        )
        snap = monitor.snapshot()
        if snap["observed_coverage"] is not None:
            _COVERAGE_OBSERVED.labels(model=model).set(snap["observed_coverage"])
        _COVERAGE_NOMINAL.labels(model=model).set(snap["nominal_coverage"])
        _COVERAGE_ALARM.labels(model=model).set(
            1.0 if snap["state"] == STATE_ALARMING else 0.0
        )
        if transition == STATE_ALARMING:
            logger.warning(
                "coverage drift alarm raised for model %s: observed %.3f "
                "below nominal %.3f (window %d); recalibrate and POST /reload",
                model,
                snap["observed_coverage"],
                snap["nominal_coverage"],
                snap["window"],
            )
        elif transition is not None:
            logger.info("coverage drift alarm cleared for model %s", model)

    def _reset_drift(self, model: str) -> None:
        """Restart a model's coverage window (after a real hot reload)."""
        monitor = self._drift.get(model)
        if monitor is None:
            return
        monitor.reset()
        _COVERAGE_ALARM.labels(model=model).set(0.0)

    def drift_snapshot(self) -> Dict[str, Any]:
        """Per-model drift monitor snapshots (``/healthz`` + ``/metrics``)."""
        return {name: monitor.snapshot() for name, monitor in self._drift.items()}

    def render_prometheus(self) -> bytes:
        """The Prometheus text exposition behind ``GET /metrics``.

        Point-in-time gauges (uptime, coverage) are refreshed first; the
        counters were already mirrored into the registry as they happened.
        """
        self.metrics.sync_exposition()
        for name, monitor in self._drift.items():
            snap = monitor.snapshot()
            if snap["observed_coverage"] is not None:
                _COVERAGE_OBSERVED.labels(model=name).set(snap["observed_coverage"])
            _COVERAGE_NOMINAL.labels(model=name).set(snap["nominal_coverage"])
            _COVERAGE_ALARM.labels(model=name).set(
                1.0 if snap["state"] == STATE_ALARMING else 0.0
            )
        return REGISTRY.render_prometheus().encode("utf-8")

    # -- routing -------------------------------------------------------------
    def _route(self, payload: Any, header_model: Optional[str]) -> str:
        """Resolve which model a scan request targets.

        Precedence: the body's ``model`` field, then the
        ``X-Repro-Model`` header, then the current champion.  Unknown
        names raise :class:`RequestError` listing what is being served.
        """
        name: Optional[str] = None
        if isinstance(payload, dict) and payload.get("model") is not None:
            name = payload["model"]
            if not isinstance(name, str):
                raise RequestError("'model' must be a string")
        elif header_model:
            name = header_model
        if name is None:
            return self.champion
        if name not in self._lanes:
            raise RequestError(
                f"unknown model {name!r} (serving: {sorted(self._lanes)})"
            )
        return name

    @staticmethod
    def deadline_from_headers(headers: Mapping[str, str]) -> Optional[Deadline]:
        """Parse the ``X-Repro-Deadline-Ms`` header into a :class:`Deadline`.

        ``None`` without the header; :class:`RequestError` when its value
        is not a positive number of milliseconds.
        """
        raw = headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            ms = float(raw)
        except (TypeError, ValueError) as exc:
            raise RequestError(
                f"invalid {DEADLINE_HEADER} header: {raw!r} is not a number"
            ) from exc
        if ms <= 0:
            raise RequestError(
                f"invalid {DEADLINE_HEADER} header: must be a positive "
                "number of milliseconds"
            )
        return Deadline.after_ms(ms)

    def _scan_response(
        self, model: str, sources: List[ScanSource], result: BatchResult
    ) -> Dict[str, Any]:
        """Build the ``POST /scan`` response payload for one batch result."""
        return {
            "model": model,
            "fingerprint": result.fingerprint or self._lanes[model].fingerprint,
            "confidence_level": result.confidence_level,
            "n_designs": len(sources),
            "n_cache_hits": result.n_cache_hits,
            "n_errors": result.n_errors,
            "records": [record.to_dict() for record in result.records],
            "batch": {
                "designs": result.batch_designs,
                "requests": result.batch_requests,
            },
        }

    def handle_scan(
        self,
        payload: Any,
        model: Optional[str] = None,
        deadline: Optional[Deadline] = None,
    ) -> Dict[str, Any]:
        """Serve one ``POST /scan`` body synchronously (threaded front-end).

        ``model`` is the routing header value, if any; the body's
        ``model`` field wins over it.  Blocks until the micro-batch ran.
        Raises :class:`BatcherOverloaded` when the lane's queue is at its
        admission bound and :class:`DeadlineExceeded` when ``deadline``
        expired before the scan ran.
        """
        name = self._route(payload, model)
        sources, confidence = parse_scan_payload(payload, allow_paths=self.allow_paths)
        if deadline is not None and deadline.expired():
            raise DeadlineExceeded(DEADLINE_ERROR)
        t_start = time.perf_counter()
        result = self._lanes[name].batcher.submit(
            sources, confidence=confidence, deadline=deadline
        )
        seconds = time.perf_counter() - t_start
        self.metrics.observe_scan(
            n_designs=len(sources),
            n_cache_hits=result.n_cache_hits,
            n_errors=result.n_errors,
            seconds=seconds,
            model=name,
        )
        self._observe_drift(name, result)
        if self._tracer is not None:
            self._tracer.record(
                "serve/scan", seconds, model=name, designs=len(sources)
            )
        self._maybe_shadow(name, sources, confidence, result)
        return self._scan_response(name, sources, result)

    def handle_scan_async(
        self,
        payload: Any,
        respond: Callable[..., None],
        model: Optional[str] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        """Serve one ``POST /scan`` body without blocking (event loop).

        Validation and admission problems raise synchronously
        (:class:`RequestError`, :class:`BatcherClosed`,
        :class:`BatcherOverloaded`, :class:`DeadlineExceeded`); otherwise
        the request is enqueued and ``respond(status, payload)`` fires
        from the lane's batch worker once the micro-batch executed — or
        with 504 if ``deadline`` expired while the request was queued.
        """
        name = self._route(payload, model)
        sources, confidence = parse_scan_payload(payload, allow_paths=self.allow_paths)
        if deadline is not None and deadline.expired():
            raise DeadlineExceeded(DEADLINE_ERROR)
        lane = self._lanes[name]
        t_start = time.perf_counter()

        def on_done(result: Optional[BatchResult], error: Optional[str]) -> None:
            """Batch completion -> HTTP response (lane worker thread)."""
            if error == DEADLINE_ERROR:
                # Shed while queued: the client's deadline passed before
                # the batch ran, so nobody is waiting for this answer.
                self.metrics.observe_rejected("deadline")
                self.metrics.observe_request("/scan", error=True)
                respond(504, {"error": error})
                return
            if error is not None or result is None:
                self.metrics.observe_request("/scan", error=True)
                respond(500, {"error": error or "scan failed"})
                return
            seconds = time.perf_counter() - t_start
            self.metrics.observe_scan(
                n_designs=len(sources),
                n_cache_hits=result.n_cache_hits,
                n_errors=result.n_errors,
                seconds=seconds,
                model=name,
            )
            self._observe_drift(name, result)
            if self._tracer is not None:
                self._tracer.record(
                    "serve/scan", seconds, model=name, designs=len(sources)
                )
            self._maybe_shadow(name, sources, confidence, result)
            self.metrics.observe_request("/scan")
            respond(200, self._scan_response(name, sources, result))

        lane.batcher.submit_nowait(
            sources, confidence=confidence, on_done=on_done, deadline=deadline
        )

    # -- rollout -------------------------------------------------------------
    def _maybe_shadow(
        self,
        model: str,
        sources: List[ScanSource],
        confidence: Optional[float],
        result: BatchResult,
    ) -> None:
        """Mirror a champion-routed scan to the challenger, maybe promote.

        The shadow submission is non-blocking (the challenger lane's own
        worker runs it), so champion responses never wait on challenger
        compute; the verdict comparison happens in the challenger
        worker's completion callback.  Auto-promotion fires here the
        moment the agreement gate clears.
        """
        rollout = self._rollout
        if rollout is None or model != rollout.champion:
            return
        if not rollout.should_sample():
            return
        champion_verdicts = [record.verdict for record in result.records]
        names = [record.name for record in result.records]
        challenger_lane = self._lanes[rollout.challenger]

        def compare(shadow: Optional[BatchResult], error: Optional[str]) -> None:
            """Challenger completion -> agreement ledger (worker thread)."""
            if error is not None or shadow is None:
                logger.warning("shadow scan failed, not counted: %s", error)
                return
            self.metrics.observe_shadow(len(champion_verdicts))
            decision = rollout.observe(
                champion_verdicts,
                [record.verdict for record in shadow.records],
                names=names,
            )
            if decision == STATE_PROMOTED:
                self._set_champion(rollout.challenger, forced=False)
            elif decision is not None:
                logger.warning(
                    "challenger %s rejected: agreement %.4f below threshold %.4f",
                    rollout.challenger,
                    rollout.agreement_rate() or 0.0,
                    rollout.promote_threshold,
                )

        try:
            challenger_lane.batcher.submit_nowait(
                sources, confidence=confidence, on_done=compare
            )
        except (BatcherClosed, MicroBatchError):
            pass  # draining: shadow traffic is best-effort by definition

    def _set_champion(self, name: str, forced: bool) -> None:
        """Swap default routing to ``name`` (idempotent, any thread)."""
        with self._champion_lock:
            if self._champion == name:
                return
            self._champion = name
        self.metrics.observe_promotion(forced=forced)
        logger.info(
            "%s promoted to champion%s", name, " (forced)" if forced else ""
        )

    def handle_promote(self) -> Dict[str, Any]:
        """Serve ``POST /promote``: force the challenger in right now."""
        rollout = self._rollout
        if rollout is None:
            raise RequestError("no challenger rollout is configured (--shadow)")
        rollout.force_promote()
        self._set_champion(rollout.challenger, forced=True)
        return {
            "champion": self.champion,
            "rollout": rollout.snapshot(),
            "version": __version__,
        }

    # -- operational endpoints ----------------------------------------------
    def handle_healthz(self) -> Dict[str, Any]:
        """Serve ``GET /healthz``: liveness, version, every resident model.

        A raised coverage-drift alarm degrades the status (``"degraded"``)
        without failing the endpoint: the service still answers scans, but
        the named models' conformal guarantees look stale and an operator
        should recalibrate (the ``drift`` entry carries the evidence).
        Active failpoints (``REPRO_FAILPOINTS`` / ``--failpoints``)
        likewise degrade the status: a fault-injected process must never
        look healthy to an orchestrator.
        """
        champion = self.champion
        models = {
            name: self.registry.get(lane.path).describe()
            for name, lane in self._lanes.items()
        }
        drift = self.drift_snapshot()
        alarming = sorted(
            name for name, snap in drift.items() if snap["state"] == STATE_ALARMING
        )
        faults = active_failpoints()
        return {
            "status": "degraded" if (alarming or faults) else "ok",
            "faults": faults,
            "drift": drift,
            "drift_alarms": alarming,
            "version": __version__,
            "model": models[champion],
            "champion": champion,
            "models": models,
            "frontend": self.frontend,
            "rollout": self._rollout.state if self._rollout is not None else None,
            "batching": {
                "window_ms": self.batcher.batch_window_s * 1000.0,
                "max_batch": self.batcher.max_batch,
            },
            "uptime_seconds": self.metrics.uptime_seconds(),
        }

    def handle_metrics(self) -> Dict[str, Any]:
        """Serve ``GET /metrics``: counters/percentiles plus serving state.

        The snapshot is augmented with ``backend`` (the active compute
        backend's name), ``backend_dtype`` (the dtype its forward pass
        runs in), ``frontend``, ``champion``, and — when a rollout is
        active — the full ``rollout`` status (state, agreement rate,
        disagreement sample) an operator needs to judge a challenger.
        ``drift`` carries each model's coverage-monitor snapshot and
        ``scheduler`` the process-wide shard retry/worker-death counters
        (only nonzero when scheduler scans ran in this process).
        """
        from ..nn.backend import get_backend

        snapshot = self.metrics.snapshot()
        snapshot["backend"] = self.backend
        snapshot["backend_dtype"] = get_backend(self.backend).dtype
        snapshot["frontend"] = self.frontend
        snapshot["champion"] = self.champion
        snapshot["rollout"] = (
            self._rollout.snapshot() if self._rollout is not None else None
        )
        snapshot["drift"] = self.drift_snapshot()
        snapshot["scheduler"] = {
            "shard_retries": REGISTRY.value("repro_engine_shard_retries_total"),
            "worker_deaths": REGISTRY.value("repro_engine_worker_deaths_total"),
            "shard_failures": REGISTRY.value("repro_engine_shard_failures_total"),
        }
        return snapshot

    def handle_reload(self, model: Optional[str] = None) -> Dict[str, Any]:
        """Serve ``POST /reload``: force fingerprint checks right now.

        Reloads every registered model, or just ``model`` when the body
        named one.  Each model reloads under its own registry load lock,
        so a large artifact mid-reload never delays the others.
        """
        if model is not None and model not in self._lanes:
            raise RequestError(
                f"unknown model {model!r} (serving: {sorted(self._lanes)})"
            )
        results: Dict[str, Any] = {}
        any_reloaded = False
        for name, lane in self._lanes.items():
            if model is not None and name != model:
                continue
            entry, reloaded = self.registry.reload(lane.path)
            if reloaded:
                self.metrics.observe_reload()
                lane.fingerprint = entry.fingerprint
                self._reset_drift(name)
                logger.info(
                    "reloaded model %s on request: %s", name, entry.fingerprint[:12]
                )
            results[name] = {"reloaded": reloaded, "model": entry.describe()}
            any_reloaded = any_reloaded or reloaded
        champion = self.champion
        return {
            "reloaded": any_reloaded,
            "model": self.registry.get(self._lanes[champion].path).describe(),
            "models": results,
            "version": __version__,
        }

    # -- event-loop dispatch -------------------------------------------------
    def dispatch(
        self,
        request: ParsedRequest,
        respond: Callable[..., None],
    ) -> None:
        """Route one parsed request from the event-loop front-end.

        ``respond(status, payload[, headers])`` is called exactly once —
        synchronously for operational endpoints and errors, from a lane's
        batch worker for scans.  Framing was already validated by the
        front-end; this layer owns JSON parsing, routing and
        error-to-status mapping (429 + ``Retry-After`` for admission
        rejects, 504 for expired deadlines).
        """
        route = request.path.split("?", 1)[0]
        method = request.method
        try:
            failpoint("serve.dispatch")
            if method == "GET":
                if route == "/healthz":
                    self.metrics.observe_request(route)
                    respond(200, self.handle_healthz())
                elif route == "/metrics":
                    self.metrics.observe_request(route)
                    if _wants_prometheus(request.path, request.headers):
                        respond(200, RawResponse(body=self.render_prometheus()))
                    else:
                        respond(200, self.handle_metrics())
                else:
                    self.metrics.observe_request(route, error=True)
                    respond(404, {"error": f"unknown route: GET {route}"})
            elif method == "POST":
                body = self._parse_json(request.body)
                if route == "/scan":
                    # observe_request happens in the completion callback
                    # (success and failure both), keeping counts exact.
                    self.handle_scan_async(
                        body,
                        respond,
                        model=request.headers.get(MODEL_HEADER),
                        deadline=self.deadline_from_headers(request.headers),
                    )
                elif route == "/reload":
                    model = body.get("model") if isinstance(body, dict) else None
                    payload = self.handle_reload(model)
                    self.metrics.observe_request(route)
                    respond(200, payload)
                elif route == "/promote":
                    payload = self.handle_promote()
                    self.metrics.observe_request(route)
                    respond(200, payload)
                else:
                    self.metrics.observe_request(route, error=True)
                    respond(404, {"error": f"unknown route: POST {route}"})
            else:
                self.metrics.observe_request(route, error=True)
                respond(501, {"error": f"unsupported method: {method}"})
        except RequestError as exc:
            self.metrics.observe_request(route, error=True)
            respond(400, {"error": str(exc)})
        except BatcherOverloaded as exc:
            # Admission control tripped: an honest 429 with a retry hint
            # beats queueing a request nobody may live to see answered.
            self.metrics.observe_rejected("overload")
            self.metrics.observe_request(route, error=True)
            respond(
                429,
                {"error": str(exc)},
                {"Retry-After": str(DEFAULT_RETRY_AFTER_S)},
            )
        except DeadlineExceeded as exc:
            self.metrics.observe_rejected("deadline")
            self.metrics.observe_request(route, error=True)
            respond(504, {"error": str(exc)})
        except BatcherClosed as exc:
            self.metrics.observe_request(route, error=True)
            respond(503, {"error": str(exc)})
        except (MicroBatchError, TimeoutError) as exc:
            self.metrics.observe_request(route, error=True)
            respond(500, {"error": str(exc)})
        except Exception as exc:  # never leak a traceback to the socket
            logger.exception("unhandled error serving %s %s", method, route)
            self.metrics.observe_request(route, error=True)
            respond(500, {"error": f"{type(exc).__name__}: {exc}"})

    @staticmethod
    def _parse_json(body: bytes) -> Any:
        """Decode a request body as JSON (empty body -> empty object)."""
        if not body:
            return {}
        try:
            return json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RequestError(f"request body is not valid JSON: {exc}") from exc

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "ScanService":
        """Serve in a background thread; returns self (for chaining)."""
        if self._loop is not None:
            self._loop.start()
        else:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,  # type: ignore[union-attr]
                kwargs={"poll_interval": 0.1},
                name="repro-serve-http",
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` is called."""
        if self._loop is not None:
            self._loop.run()
        else:
            self._httpd.serve_forever(poll_interval=0.1)  # type: ignore[union-attr]

    def _close_batchers(self) -> bool:
        """Drain every lane's batcher; True when all workers finished."""
        drained = True
        for lane in self._lanes.values():
            drained = lane.batcher.close() and drained
        return drained

    def shutdown(self) -> None:
        """Graceful shutdown: stop accepting, drain batches, flush caches.

        Safe to call from any thread (including a signal-triggered one)
        and idempotent.  Ordering matters: the front-end stops accepting
        first so no new work arrives, every lane's batcher then drains
        its queued requests (completions still flow out through the
        front-end), the result caches are flushed — *before* connection
        teardown, so durability is not held hostage to an idle keep-alive
        connection — and only then are the remaining connections closed.
        """
        with self._shutdown_lock:
            if self._closed:
                return
            self._closed = True
        if self._loop is not None:
            self._loop.begin_drain()  # stop accepting connections
            drained = self._close_batchers()  # drain queued scans
            if drained:
                self.registry.flush_caches()
            else:
                logger.warning(
                    "batch worker did not drain in time; "
                    "skipping shutdown cache flush"
                )
            if self._tracer is not None:
                self._tracer.flush()  # the last batch's spans hit disk
            # The loop keeps running through the drain above, writing out
            # each completed response; now flush what is left and stop.
            self._loop.shutdown(grace_s=2.0)
            return
        httpd = self._httpd
        assert httpd is not None
        httpd.shutdown()  # stop the accept loop
        httpd.closing = True  # handlers stop reusing connections
        drained = self._close_batchers()  # drain queued scans (the cache writers)
        if drained:
            self.registry.flush_caches()
        else:
            # A worker is still mid-drain after the join timeout;
            # flushing now would race its cache writes.  Skip — losing
            # cached verdicts (a rescan recomputes them) beats corrupting
            # the flush.
            logger.warning(
                "batch worker did not drain in time; skipping shutdown cache flush"
            )
        if self._tracer is not None:
            self._tracer.flush()  # the last batch's spans hit disk
        # Grace period for handlers to finish writing in-flight responses,
        # then force-close whatever is left (idle keep-alive connections
        # parked in their read timeout would otherwise pin the join).
        deadline = time.monotonic() + 2.0
        while httpd.open_connection_count() and time.monotonic() < deadline:
            time.sleep(0.02)
        httpd.force_close_connections()
        httpd.server_close()  # join handler threads, release the socket
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "ScanService":
        """Context-manager entry: start serving in the background."""
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: graceful shutdown."""
        self.shutdown()


class _ScanHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows its :class:`ScanService`.

    Handler threads are non-daemonic and joined on ``server_close`` — that
    join (after the batchers drained) is what makes shutdown *graceful*: a
    request that was already accepted always gets its response before the
    process exits.  Open connections are tracked so shutdown can tell
    keep-alive clients to go away: handlers stop reusing connections once
    ``closing`` is set, and connections still open after the grace period
    are force-closed (otherwise one idle keep-alive poller would pin the
    join until its read timeout — or forever, if it keeps polling).
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True
    # socketserver's default listen backlog is 5; a burst of concurrent
    # clients connecting at once would overflow it and stall on SYN
    # retransmits.
    request_queue_size = 128

    def __init__(
        self,
        address: Tuple[str, int],
        handler: type,
        service: "ScanService",
    ) -> None:
        self.service = service
        self.closing = False
        self._conn_lock = threading.Lock()
        self._connections: set = set()
        super().__init__(address, handler)

    def track_connection(self, connection: Any) -> None:
        """Remember an open connection (called from handler setup)."""
        with self._conn_lock:
            self._connections.add(connection)

    def untrack_connection(self, connection: Any) -> None:
        """Forget a finished connection (called from handler teardown)."""
        with self._conn_lock:
            self._connections.discard(connection)

    def open_connection_count(self) -> int:
        """How many client connections are currently open."""
        with self._conn_lock:
            return len(self._connections)

    def force_close_connections(self) -> None:
        """Unblock every remaining handler by shutting its socket down.

        A handler parked in ``readline`` on an idle keep-alive connection
        wakes immediately with EOF and exits its loop (``closing`` makes
        it non-reusable), letting ``server_close``'s join complete.
        """
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # already gone

    def handle_error(self, request: Any, client_address: Any) -> None:
        """Log handler errors via ``logging`` (quietly during shutdown)."""
        if self.closing:
            # Force-closed sockets make in-flight writes raise; that is
            # the mechanism, not a bug worth a traceback.
            logger.debug("connection %s closed during shutdown", client_address)
            return
        logger.exception("error handling request from %s", client_address)


class _HeaderDict(dict):
    """Case-insensitive read view over headers parsed by the fast path."""

    def get(self, key: str, default: Any = None) -> Any:
        """Look a header up regardless of the caller's capitalisation."""
        return dict.get(self, key.lower(), default)


class _ScanRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the service; all bodies are JSON."""

    server: _ScanHTTPServer
    protocol_version = "HTTP/1.1"  # keep-alive: clients reuse connections
    timeout = 60.0
    # Small request/response writes must not sit in Nagle's buffer waiting
    # for a delayed ACK (a classic ~40ms stall per round trip on loopback).
    disable_nagle_algorithm = True

    # -- plumbing ------------------------------------------------------------
    def setup(self) -> None:
        """Register the connection so shutdown can reach it."""
        super().setup()
        self.server.track_connection(self.connection)

    def finish(self) -> None:
        """Deregister the connection before the stdlib teardown."""
        self.server.untrack_connection(self.connection)
        super().finish()

    def handle_one_request(self) -> None:
        """Minimal request parsing for the narrow HTTP subset served here.

        ``BaseHTTPRequestHandler`` routes headers through ``email.parser``,
        which costs ~0.1ms per request — measurable at the request rates
        the micro-batching service targets.  This override parses the
        request line and headers directly, supporting exactly what the
        service (and its clients) speak: ``Content-Length``-framed JSON
        bodies and HTTP/1.1 keep-alive.  Anything malformed closes the
        connection rather than guessing.
        """
        try:
            raw_requestline = self.rfile.readline(65537)
            if not raw_requestline or len(raw_requestline) > 65536:
                self.close_connection = True
                return
            self.raw_requestline = raw_requestline
            self.requestline = raw_requestline.decode("latin-1").rstrip("\r\n")
            words = raw_requestline.split()
            if len(words) != 3:
                self.close_connection = True
                return
            command = words[0].decode("latin-1")
            self.command = command
            self.path = words[1].decode("latin-1")
            self.request_version = version = words[2].decode("latin-1")
            if not version.startswith("HTTP/"):
                self.close_connection = True
                return
            headers: Dict[str, str] = {}
            header_lines = 0
            while True:
                line = self.rfile.readline(65537)
                header_lines += 1
                if len(line) > 65536 or header_lines > 100:
                    # Same bounds the stdlib parser enforces (counting
                    # header *lines*, so repeated names cannot dodge the
                    # cap): an over-long line or an unbounded header
                    # stream is hostile input, not something to buffer.
                    self.close_connection = True
                    return
                if line in (b"\r\n", b"\n", b""):
                    break
                key, _, value = line.partition(b":")
                headers[key.decode("latin-1").strip().lower()] = value.decode(
                    "latin-1"
                ).strip()
            self.headers = _HeaderDict(headers)  # type: ignore[assignment]
            self.close_connection = (
                version == "HTTP/1.0"
                or headers.get("connection", "").lower() == "close"
            )
            if headers.get("expect", "").lower() == "100-continue":
                # curl (and others) withhold bodies >1 KiB until the
                # interim 100 arrives; not answering would stall every
                # realistic-size scan request by the client's Expect
                # timeout (~1s for curl).
                self.send_response_only(100)
                self.end_headers()
            method = getattr(self, f"do_{command}", None)
            if method is None or not command.isalpha():
                # The declared body (if any) was never consumed; do not
                # let the next request on this connection read stale
                # bytes.
                self.close_connection = True
                self._respond_error(501, f"unsupported method: {command}")
                return
            method()
            self.wfile.flush()
            if self.server.closing:
                # Shutdown in progress: answer the request that was
                # already in flight, then stop reusing the connection.
                self.close_connection = True
        except TimeoutError:
            self.close_connection = True

    def log_message(self, format: str, *args: Any) -> None:
        """Route per-request lines to ``logging`` instead of stderr."""
        logger.debug("%s - %s", self.address_string(), format % args)

    def _respond(
        self,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        """Write one JSON response with correct framing for keep-alive."""
        body = _json_bytes(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if extra_headers:
            for key, value in extra_headers.items():
                self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _respond_raw(self, status: int, raw: RawResponse) -> None:
        """Write one pre-encoded response (the Prometheus exposition)."""
        self.send_response(status)
        self.send_header("Content-Type", raw.content_type)
        self.send_header("Content-Length", str(len(raw.body)))
        self.end_headers()
        self.wfile.write(raw.body)

    def _respond_error(self, status: int, message: str) -> None:
        self._respond(status, {"error": message})

    def _read_json_body(self) -> Any:
        """Parse the request body as JSON (raises :class:`RequestError`).

        When the body is rejected *without being consumed* (bad or
        oversized ``Content-Length``), the connection is marked for close
        — leaving unread bytes on a keep-alive stream would corrupt the
        next request on it.
        """
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError) as exc:
            self.close_connection = True  # body length unknown: cannot drain
            raise RequestError("invalid Content-Length header") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            self.close_connection = True  # body left unread on the socket
            raise RequestError(f"request body must be 0..{MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RequestError(f"request body is not valid JSON: {exc}") from exc

    # -- routing -------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Dispatch ``GET /healthz`` and ``GET /metrics``."""
        service = self.server.service
        route = self.path.split("?", 1)[0]
        if route == "/healthz":
            service.metrics.observe_request(route)
            self._respond(200, service.handle_healthz())
        elif route == "/metrics":
            service.metrics.observe_request(route)
            if _wants_prometheus(self.path, self.headers):
                self._respond_raw(200, RawResponse(body=service.render_prometheus()))
            else:
                self._respond(200, service.handle_metrics())
        else:
            service.metrics.observe_request(route, error=True)
            self._respond_error(404, f"unknown route: GET {route}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Dispatch ``POST /scan``, ``/reload`` and ``/promote``.

        The body is always consumed (even for routes that ignore it):
        leaving unread bytes on a keep-alive connection would corrupt the
        next request on it.
        """
        service = self.server.service
        route = self.path.split("?", 1)[0]
        try:
            body = self._read_json_body()
        except RequestError as exc:
            service.metrics.observe_request(route, error=True)
            self._respond_error(400, str(exc))
            return
        if route == "/scan":
            self._handle_scan(service, route, body)
        elif route == "/reload":
            try:
                model = body.get("model") if isinstance(body, dict) else None
                payload = service.handle_reload(model)
            except RequestError as exc:
                service.metrics.observe_request(route, error=True)
                self._respond_error(400, str(exc))
                return
            except Exception as exc:  # a failed reload answers 500, never kills the handler
                service.metrics.observe_request(route, error=True)
                self._respond_error(500, f"reload failed: {exc}")
                return
            service.metrics.observe_request(route)
            self._respond(200, payload)
        elif route == "/promote":
            try:
                payload = service.handle_promote()
            except RequestError as exc:
                service.metrics.observe_request(route, error=True)
                self._respond_error(400, str(exc))
                return
            service.metrics.observe_request(route)
            self._respond(200, payload)
        else:
            service.metrics.observe_request(route, error=True)
            self._respond_error(404, f"unknown route: POST {route}")

    def _handle_scan(self, service: ScanService, route: str, body: Any) -> None:
        """``POST /scan`` with the error-to-status mapping in one place."""
        try:
            payload = service.handle_scan(
                body,
                model=self.headers.get(MODEL_HEADER),
                deadline=service.deadline_from_headers(self.headers),
            )
        except RequestError as exc:
            service.metrics.observe_request(route, error=True)
            self._respond_error(400, str(exc))
        except BatcherOverloaded as exc:
            service.metrics.observe_rejected("overload")
            service.metrics.observe_request(route, error=True)
            self._respond(
                429,
                {"error": str(exc)},
                {"Retry-After": str(DEFAULT_RETRY_AFTER_S)},
            )
        except DeadlineExceeded as exc:
            service.metrics.observe_rejected("deadline")
            service.metrics.observe_request(route, error=True)
            self._respond_error(504, str(exc))
        except BatcherClosed as exc:
            service.metrics.observe_request(route, error=True)
            self._respond_error(503, str(exc))
        except (MicroBatchError, TimeoutError) as exc:
            service.metrics.observe_request(route, error=True)
            self._respond_error(500, str(exc))
        except Exception as exc:  # never leak a traceback to the socket
            logger.exception("unhandled error serving POST /scan")
            service.metrics.observe_request(route, error=True)
            self._respond_error(500, f"{type(exc).__name__}: {exc}")
        else:
            service.metrics.observe_request(route)
            self._respond(200, payload)
