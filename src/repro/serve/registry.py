"""Hot model registry: load detector artifacts once, swap them without downtime.

A long-lived scan service must not pay the artifact-loading cost per
request (that is exactly the cold-start the service exists to remove), but
it also must not serve a stale detector forever: recalibration
(``python -m repro calibrate``) rewrites the artifact directory in place
and changes its fingerprint.  :class:`ModelRegistry` resolves both needs:

* each artifact is loaded **once** into a :class:`repro.engine.scan.ScanEngine`
  keyed by its fingerprint, with the sharded result cache attached under
  that fingerprint (so cached verdicts can never leak across retrains);
* every lookup runs a cheap staleness probe — the ``manifest.json`` mtime
  is stat'ed, and only when it changed is the manifest re-read to compare
  fingerprints — so a recalibrated artifact is picked up on the next
  batch without restarting the server (**hot reload**), while the steady
  state costs one ``stat`` per probe.

The registry is built for **multi-model serving**: any number of artifact
paths may be resident at once (one per tenant / design family), all
sharing the one model-independent feature store.  Two properties keep the
tenants independent:

* the staleness-probe TTL is **per model**, not per registry — each
  resident entry carries its own probe clock, so a tenant that
  hot-reloads every few seconds never suppresses (or forces) probes for
  the others;
* artifact loading happens under a **per-path lock**, never under the
  registry-wide one — a tenant mid-reload (deserializing a large
  artifact) cannot block another tenant's probe, lookup or reload.

Engines are swapped atomically; an in-flight batch keeps scanning on the
engine it resolved (the old model) while the next batch gets the new one.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..faults import RELOAD_PROBE_TTL_S
from ..features.image import DEFAULT_IMAGE_SIZE
from ..engine.artifacts import MANIFEST_NAME, load_detector, prepare_quantized_state
from ..engine.cache import ScanCache
from ..engine.feature_store import FeatureStore, default_feature_store_dir
from ..engine.scan import ScanEngine
from ..nn.backend import DEFAULT_BACKEND, get_backend

#: Default staleness-probe TTL (seconds): how long a ``maybe_reload``
#: outcome is trusted before the manifest is stat'ed again.  High-QPS
#: traffic probes once per micro-batch; without the TTL that is thousands
#: of ``stat`` calls per second against the artifact directory for a file
#: that changes a few times a day.  The value lives in the system-wide
#: policy table (:data:`repro.faults.policy.RELOAD_PROBE_TTL_S`): 250 ms
#: keeps the steady state at ~4 stats/second *per resident model* while
#: bounding hot-reload latency well under a second (and ``POST /reload``
#: always bypasses the TTL).
DEFAULT_RELOAD_TTL_S = RELOAD_PROBE_TTL_S


@dataclass
class RegisteredModel:
    """One resident detector: its engine plus the provenance of the load."""

    engine: ScanEngine
    fingerprint: str
    artifact_path: Path
    manifest_mtime: float
    loaded_at: float
    kind: str
    #: ``time.monotonic()`` of the last staleness probe.  Deliberately a
    #: per-model clock: TTL bookkeeping on the registry itself would let
    #: one frequently-probed (or hot-reloading) tenant starve every other
    #: model's staleness probes (see ``tests/test_serve_registry.py``).
    last_probe: float = 0.0

    def describe(self) -> Dict[str, object]:
        """JSON-ready summary used by ``/healthz`` and ``/reload``."""
        return {
            "fingerprint": self.fingerprint,
            "artifact": str(self.artifact_path),
            "kind": self.kind,
            "loaded_at": self.loaded_at,
        }


class ModelRegistry:
    """Fingerprint-keyed store of loaded detectors with hot reload.

    Parameters
    ----------
    cache_dir:
        Root of the sharded scan-result cache; each loaded model gets a
        :class:`repro.engine.cache.ScanCache` namespaced by its own
        fingerprint.  ``None`` serves uncached.
    image_size:
        Adjacency-image size the feature pipeline was trained with.
    cache_shard_prefix_len:
        Hash-prefix length of the attached caches' shard files.  The
        serving default is ``1`` (16 shards): a service is a single
        cache writer flushing small dirty sets, where 256-way sharding
        would turn every flush into one file write per design.  Both
        layouts coexist in one cache directory (readers merge all shard
        files).
    feature_cache:
        Attach the model-independent feature tier
        (:class:`repro.engine.feature_store.FeatureStore`, under
        ``<cache_dir>/features``).  The store is **shared by every engine
        the registry ever loads** — it is keyed by source content, not by
        model — so a hot reload keeps the warm feature tier and
        post-reload scans of known designs skip straight to inference.
        Ignored when ``cache_dir`` is ``None``.
    feature_store_dir:
        Explicit feature-tier root, overriding the ``<cache_dir>/features``
        convention (and working even without a result cache — the
        recalibration workflow wants exactly that: fresh verdicts, warm
        features).
    reload_ttl_s:
        How long (seconds) a :meth:`maybe_reload` staleness verdict is
        trusted before the manifest mtime is stat'ed again.  The clock is
        kept **per resident model** (on its :class:`RegisteredModel`), so
        probing one artifact never spends another's TTL budget.  ``0``
        restores a stat per probe; :meth:`reload` always bypasses it.
    backend:
        Inference compute backend every loaded engine runs
        (:func:`repro.nn.available_backends` lists the choices).  For
        ``int8`` the quantized-weight sidecar is prepared in the artifact
        directory at load time, so hot reloads of a recalibrated-but-
        identical-weights model reuse it.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        image_size: int = DEFAULT_IMAGE_SIZE,
        cache_shard_prefix_len: int = 1,
        feature_cache: bool = True,
        feature_store_dir: Optional[Union[str, Path]] = None,
        reload_ttl_s: float = DEFAULT_RELOAD_TTL_S,
        backend: str = DEFAULT_BACKEND,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.image_size = image_size
        self.cache_shard_prefix_len = cache_shard_prefix_len
        self.reload_ttl_s = reload_ttl_s
        get_backend(backend)  # unknown names fail at construction
        self.backend = backend
        if feature_store_dir is None and self.cache_dir is not None and feature_cache:
            feature_store_dir = default_feature_store_dir(self.cache_dir)
        # One feature store for the whole registry: the tier is
        # model-independent, so reloads and multi-model serving all share
        # (and keep warming) the same content-addressed rows.
        self.feature_store: Optional[FeatureStore] = (
            FeatureStore(feature_store_dir, image_size=image_size)
            if feature_store_dir is not None
            else None
        )
        # ``_lock`` guards only the dictionaries below — never a model
        # load.  Loading happens under the per-path lock so one tenant's
        # multi-second deserialization cannot block the others' probes.
        self._lock = threading.RLock()
        self._by_path: Dict[Path, RegisteredModel] = {}
        self._load_locks: Dict[Path, threading.Lock] = {}
        # Models swapped out by a reload whose caches may still hold
        # unflushed records; drained by the next flush_caches() call.
        # Flushing them here directly would race the batch worker, which
        # may be mid-scan (mid cache.put) on the outgoing engine.
        self._retired: List[RegisteredModel] = []

    # -- internals -----------------------------------------------------------
    def _manifest_path(self, artifact_path: Path) -> Path:
        return artifact_path / MANIFEST_NAME

    def _manifest_mtime(self, artifact_path: Path) -> float:
        """The artifact manifest's mtime (the cheap staleness signal)."""
        return os.stat(self._manifest_path(artifact_path)).st_mtime

    def _load_lock(self, path: Path) -> threading.Lock:
        """The per-artifact-path load lock (created on first use)."""
        with self._lock:
            lock = self._load_locks.get(path)
            if lock is None:
                lock = self._load_locks[path] = threading.Lock()
            return lock

    def _load(self, artifact_path: Path) -> RegisteredModel:
        """Load the detector behind ``artifact_path`` into a fresh engine."""
        mtime = self._manifest_mtime(artifact_path)
        model, manifest = load_detector(artifact_path)
        fingerprint = manifest.get("fingerprint", "unversioned")
        cache = (
            ScanCache(
                self.cache_dir,
                fingerprint,
                shard_prefix_len=self.cache_shard_prefix_len,
            )
            if self.cache_dir is not None
            else None
        )
        quant_state = None
        if self.backend == "int8":
            quant_state = prepare_quantized_state(model, artifact_path, fingerprint)
        engine = ScanEngine(
            model,
            fingerprint=fingerprint,
            cache=cache,
            feature_store=self.feature_store,
            image_size=self.image_size,
            backend=self.backend,
            quant_state=quant_state,
        )
        return RegisteredModel(
            engine=engine,
            fingerprint=fingerprint,
            artifact_path=artifact_path,
            manifest_mtime=mtime,
            loaded_at=time.time(),
            kind=str(manifest.get("kind", "unknown")),
            last_probe=time.monotonic(),
        )

    # -- public API ----------------------------------------------------------
    def get(self, artifact_path: Union[str, Path]) -> RegisteredModel:
        """The resident model for an artifact, loading it on first use.

        Subsequent calls return the cached engine without touching the
        model files; staleness is checked separately (:meth:`maybe_reload`)
        so the hot path can choose when to pay the ``stat``.  First-use
        loading holds only this path's load lock — concurrent ``get`` /
        ``maybe_reload`` calls for *other* artifacts proceed untouched.
        """
        path = Path(artifact_path).resolve()
        with self._lock:
            entry = self._by_path.get(path)
        if entry is not None:
            return entry
        with self._load_lock(path):
            # Re-check under the load lock: another thread may have won
            # the race and loaded this artifact while we waited.
            with self._lock:
                entry = self._by_path.get(path)
                if entry is not None:
                    return entry
            fresh = self._load(path)
            with self._lock:
                entry = self._by_path.setdefault(path, fresh)
            return entry

    def maybe_reload(
        self, artifact_path: Union[str, Path]
    ) -> Tuple[RegisteredModel, bool]:
        """Return the current model, hot-reloading if the artifact changed.

        The probe is three-tier: within ``reload_ttl_s`` of **this
        model's** previous probe the resident model is returned without
        touching the filesystem at all (high-QPS traffic probes per
        micro-batch, which would otherwise ``stat`` the artifact dir
        thousands of times per second); then a ``stat`` of
        ``manifest.json`` (the steady-state cost, a few times per
        second); and only when the mtime moved is the detector re-loaded
        and its fingerprint compared.  A rewrite that produced the *same*
        fingerprint (e.g. re-saving an identical model) keeps the
        resident engine and its warm cache.  Returns ``(entry, reloaded)``.

        Each model keeps its own TTL clock and reloads under its own
        load lock, so neither a chatty prober nor a mid-reload tenant
        affects when *other* models' artifacts are probed.
        """
        path = Path(artifact_path).resolve()
        with self._lock:
            entry = self._by_path.get(path)
        if entry is None:
            return self.get(path), False
        now = time.monotonic()
        if now - entry.last_probe < self.reload_ttl_s:
            return entry, False
        entry.last_probe = now
        try:
            mtime = self._manifest_mtime(path)
        except OSError:
            # Mid-rewrite (save_detector replaces files) or the
            # artifact vanished: keep serving the resident model.
            return entry, False
        if mtime == entry.manifest_mtime:
            return entry, False
        return self._reload_path(path, entry)

    def reload(self, artifact_path: Union[str, Path]) -> Tuple[RegisteredModel, bool]:
        """Force a fingerprint check now (the ``POST /reload`` path).

        Unlike :meth:`maybe_reload` this skips the mtime short-circuit, so
        an operator can recover even from a rewrite that preserved the
        manifest mtime.  Returns ``(entry, reloaded)``.
        """
        path = Path(artifact_path).resolve()
        with self._lock:
            entry = self._by_path.get(path)
        if entry is None:
            return self.get(path), False
        return self._reload_path(path, entry)

    def _reload_path(
        self, path: Path, entry: RegisteredModel
    ) -> Tuple[RegisteredModel, bool]:
        """Reload ``path`` under its own load lock and swap if it changed.

        The fingerprint is read from the manifest alone first: a rewrite
        that produced the same model (the common recalibrate-to-identical
        or plain ``touch`` case) costs one small JSON read, not a full
        weight/calibration deserialization.  Only the per-path load lock
        is held during deserialization — the registry-wide lock is taken
        solely for the final swap, so other tenants' probes and lookups
        never wait on this model's load.
        """
        from ..engine.artifacts import ArtifactError, load_manifest

        with self._load_lock(path):
            with self._lock:
                # Another thread may have finished this exact reload
                # while we waited on the load lock.
                entry = self._by_path.get(path, entry)
            try:
                mtime = self._manifest_mtime(path)
                manifest_fingerprint = load_manifest(path).get(
                    "fingerprint", "unversioned"
                )
                if manifest_fingerprint == entry.fingerprint:
                    # Same model content: keep the resident engine (and its
                    # warm in-memory cache view), just remember the new mtime.
                    entry.manifest_mtime = mtime
                    entry.last_probe = time.monotonic()
                    return entry, False
                fresh = self._load(path)
            except (OSError, ValueError, KeyError, ArtifactError):
                # Mid-rewrite (save_detector replaces the files non-atomically)
                # or otherwise unreadable: keep serving the resident model.
                # entry.manifest_mtime is left untouched, so the next probe
                # retries once the rewrite has settled.
                return entry, False
            # The outgoing engine may still be scanning (an in-flight batch
            # keeps its reference) — retire it and let the next
            # flush_caches() persist whatever it holds.
            with self._lock:
                if entry.engine.cache is not None:
                    self._retired.append(entry)
                self._by_path[path] = fresh
            return fresh, True

    def entries(self) -> List[RegisteredModel]:
        """Every resident model (one per registered artifact path)."""
        with self._lock:
            return list(self._by_path.values())

    def flush_caches(self) -> None:
        """Flush every resident (and retired) engine's cache tiers.

        Called from the serving layer's batch workers between batches and
        on shutdown after the workers drained — i.e. never concurrently
        with a scan writing to the same cache.  Retired engines (swapped
        out by a hot reload) are flushed once here and then dropped.  The
        shared feature store is flushed once (it is one object, not
        per-engine state).
        """
        with self._lock:
            retired, self._retired = self._retired, []
            entries = list(self._by_path.values())
        for entry in entries + retired:
            if entry.engine.cache is not None:
                entry.engine.cache.flush()
        if self.feature_store is not None:
            self.feature_store.flush()
