"""Hot model registry: load detector artifacts once, swap them without downtime.

A long-lived scan service must not pay the artifact-loading cost per
request (that is exactly the cold-start the service exists to remove), but
it also must not serve a stale detector forever: recalibration
(``python -m repro calibrate``) rewrites the artifact directory in place
and changes its fingerprint.  :class:`ModelRegistry` resolves both needs:

* each artifact is loaded **once** into a :class:`repro.engine.scan.ScanEngine`
  keyed by its fingerprint, with the sharded result cache attached under
  that fingerprint (so cached verdicts can never leak across retrains);
* every lookup runs a cheap staleness probe — the ``manifest.json`` mtime
  is stat'ed, and only when it changed is the manifest re-read to compare
  fingerprints — so a recalibrated artifact is picked up on the next
  batch without restarting the server (**hot reload**), while the steady
  state costs one ``stat`` per probe.

The registry is thread-safe; engines are swapped atomically under a lock,
and an in-flight batch keeps scanning on the engine it resolved (the old
model) while the next batch gets the new one.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..features.image import DEFAULT_IMAGE_SIZE
from ..engine.artifacts import MANIFEST_NAME, load_detector
from ..engine.cache import ScanCache
from ..engine.scan import ScanEngine


@dataclass
class RegisteredModel:
    """One resident detector: its engine plus the provenance of the load."""

    engine: ScanEngine
    fingerprint: str
    artifact_path: Path
    manifest_mtime: float
    loaded_at: float
    kind: str

    def describe(self) -> Dict[str, object]:
        """JSON-ready summary used by ``/healthz`` and ``/reload``."""
        return {
            "fingerprint": self.fingerprint,
            "artifact": str(self.artifact_path),
            "kind": self.kind,
            "loaded_at": self.loaded_at,
        }


class ModelRegistry:
    """Fingerprint-keyed store of loaded detectors with hot reload.

    Parameters
    ----------
    cache_dir:
        Root of the sharded scan-result cache; each loaded model gets a
        :class:`repro.engine.cache.ScanCache` namespaced by its own
        fingerprint.  ``None`` serves uncached.
    image_size:
        Adjacency-image size the feature pipeline was trained with.
    cache_shard_prefix_len:
        Hash-prefix length of the attached caches' shard files.  The
        serving default is ``1`` (16 shards): a service is a single
        cache writer flushing small dirty sets, where 256-way sharding
        would turn every flush into one file write per design.  Both
        layouts coexist in one cache directory (readers merge all shard
        files).
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        image_size: int = DEFAULT_IMAGE_SIZE,
        cache_shard_prefix_len: int = 1,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.image_size = image_size
        self.cache_shard_prefix_len = cache_shard_prefix_len
        self._lock = threading.RLock()
        self._by_path: Dict[Path, RegisteredModel] = {}
        # Models swapped out by a reload whose caches may still hold
        # unflushed records; drained by the next flush_caches() call.
        # Flushing them here directly would race the batch worker, which
        # may be mid-scan (mid cache.put) on the outgoing engine.
        self._retired: List[RegisteredModel] = []

    # -- internals -----------------------------------------------------------
    def _manifest_path(self, artifact_path: Path) -> Path:
        return artifact_path / MANIFEST_NAME

    def _manifest_mtime(self, artifact_path: Path) -> float:
        """The artifact manifest's mtime (the cheap staleness signal)."""
        return os.stat(self._manifest_path(artifact_path)).st_mtime

    def _load(self, artifact_path: Path) -> RegisteredModel:
        """Load the detector behind ``artifact_path`` into a fresh engine."""
        mtime = self._manifest_mtime(artifact_path)
        model, manifest = load_detector(artifact_path)
        fingerprint = manifest.get("fingerprint", "unversioned")
        cache = (
            ScanCache(
                self.cache_dir,
                fingerprint,
                shard_prefix_len=self.cache_shard_prefix_len,
            )
            if self.cache_dir is not None
            else None
        )
        engine = ScanEngine(
            model, fingerprint=fingerprint, cache=cache, image_size=self.image_size
        )
        return RegisteredModel(
            engine=engine,
            fingerprint=fingerprint,
            artifact_path=artifact_path,
            manifest_mtime=mtime,
            loaded_at=time.time(),
            kind=str(manifest.get("kind", "unknown")),
        )

    # -- public API ----------------------------------------------------------
    def get(self, artifact_path: Union[str, Path]) -> RegisteredModel:
        """The resident model for an artifact, loading it on first use.

        Subsequent calls return the cached engine without touching the
        model files; staleness is checked separately (:meth:`maybe_reload`)
        so the hot path can choose when to pay the ``stat``.
        """
        path = Path(artifact_path).resolve()
        with self._lock:
            entry = self._by_path.get(path)
            if entry is None:
                entry = self._load(path)
                self._by_path[path] = entry
            return entry

    def maybe_reload(
        self, artifact_path: Union[str, Path]
    ) -> Tuple[RegisteredModel, bool]:
        """Return the current model, hot-reloading if the artifact changed.

        The probe is two-tier: a ``stat`` of ``manifest.json`` first (the
        steady-state cost), and only when the mtime moved is the detector
        re-loaded and its fingerprint compared.  A rewrite that produced
        the *same* fingerprint (e.g. re-saving an identical model) keeps
        the resident engine and its warm cache.  Returns ``(entry,
        reloaded)``.
        """
        path = Path(artifact_path).resolve()
        with self._lock:
            entry = self._by_path.get(path)
            if entry is None:
                return self.get(path), False
            try:
                mtime = self._manifest_mtime(path)
            except OSError:
                # Mid-rewrite (save_detector replaces files) or the
                # artifact vanished: keep serving the resident model.
                return entry, False
            if mtime == entry.manifest_mtime:
                return entry, False
            return self._reload_locked(path, entry)

    def reload(self, artifact_path: Union[str, Path]) -> Tuple[RegisteredModel, bool]:
        """Force a fingerprint check now (the ``POST /reload`` path).

        Unlike :meth:`maybe_reload` this skips the mtime short-circuit, so
        an operator can recover even from a rewrite that preserved the
        manifest mtime.  Returns ``(entry, reloaded)``.
        """
        path = Path(artifact_path).resolve()
        with self._lock:
            entry = self._by_path.get(path)
            if entry is None:
                return self.get(path), False
            return self._reload_locked(path, entry)

    def _reload_locked(
        self, path: Path, entry: RegisteredModel
    ) -> Tuple[RegisteredModel, bool]:
        """Reload ``path`` (lock held) and swap the entry if it changed.

        The fingerprint is read from the manifest alone first: a rewrite
        that produced the same model (the common recalibrate-to-identical
        or plain ``touch`` case) costs one small JSON read, not a full
        weight/calibration deserialization under the registry lock.
        """
        from ..engine.artifacts import ArtifactError, load_manifest

        try:
            mtime = self._manifest_mtime(path)
            manifest_fingerprint = load_manifest(path).get(
                "fingerprint", "unversioned"
            )
            if manifest_fingerprint == entry.fingerprint:
                # Same model content: keep the resident engine (and its
                # warm in-memory cache view), just remember the new mtime.
                entry.manifest_mtime = mtime
                return entry, False
            fresh = self._load(path)
        except (OSError, ValueError, KeyError, ArtifactError):
            # Mid-rewrite (save_detector replaces the files non-atomically)
            # or otherwise unreadable: keep serving the resident model.
            # entry.manifest_mtime is left untouched, so the next probe
            # retries once the rewrite has settled.
            return entry, False
        # The outgoing engine may still be scanning (an in-flight batch
        # keeps its reference) — retire it and let the next
        # flush_caches() persist whatever it holds.
        if entry.engine.cache is not None:
            self._retired.append(entry)
        self._by_path[path] = fresh
        return fresh, True

    def entries(self) -> List[RegisteredModel]:
        """Every resident model (one per registered artifact path)."""
        with self._lock:
            return list(self._by_path.values())

    def flush_caches(self) -> None:
        """Flush every resident (and retired) engine's result cache.

        Called from the serving layer's batch worker between batches and
        on shutdown after the worker drained — i.e. never concurrently
        with a scan writing to the same cache.  Retired engines (swapped
        out by a hot reload) are flushed once here and then dropped.
        """
        with self._lock:
            retired, self._retired = self._retired, []
            entries = list(self._by_path.values())
        for entry in entries + retired:
            if entry.engine.cache is not None:
                entry.engine.cache.flush()
