"""Thin stdlib client for the scan service (used by tests, tools and bench).

:class:`ScanServiceClient` wraps ``http.client`` with a persistent
keep-alive connection — the server speaks HTTP/1.1, so a client issuing
many requests (the load benchmark, a CI smoke loop) pays the TCP setup
once, not per request.  A connection object is not thread-safe; use one
client per thread (they are cheap) when fanning out concurrent requests.

Typical use::

    from repro.serve.client import ScanServiceClient

    client = ScanServiceClient(port=8731)
    client.wait_until_ready()
    response = client.scan_texts([("top", "module top; endmodule")])
    for record in response["records"]:
        print(record["name"], record["decision"] or record["error"])
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .server import DEFAULT_HOST, DEFAULT_PORT


class ScanServiceError(RuntimeError):
    """A non-2xx response (or transport failure) from the scan service."""

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ScanServiceClient:
    """Keep-alive JSON client for one scan-service endpoint.

    Parameters
    ----------
    host / port:
        Where the service listens.
    timeout:
        Socket timeout per request (covers the micro-batch window plus
        the scan itself).
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport -----------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn.connect()
            # Headers and body go out as separate small writes; without
            # TCP_NODELAY Nagle holds the second one for the delayed ACK
            # (~40ms per request on loopback).
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def close(self) -> None:
        """Close the persistent connection (reopened on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ScanServiceClient":
        """Context-manager entry: the client itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close the persistent connection."""
        self.close()

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """One JSON round trip; retries once after a dropped keep-alive.

        Only connection-reuse failures are retried.  A socket timeout is
        *not*: the server may still be processing the request (scans are
        not idempotent work), so resubmitting would double it — the
        timeout surfaces to the caller instead.
        """
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body is not None else {}
        last_exc: Optional[Exception] = None
        for attempt in range(2):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except socket.timeout:
                self.close()
                raise ScanServiceError(
                    f"{method} {path} timed out after {self.timeout}s"
                )
            except (http.client.HTTPException, ConnectionError) as exc:
                # A keep-alive connection the server closed between
                # requests surfaces here; reconnect once, then give up.
                self.close()
                last_exc = exc
        else:
            raise ScanServiceError(
                f"{method} {path} failed: {type(last_exc).__name__}: {last_exc}"
            ) from last_exc
        try:
            data = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ScanServiceError(
                f"{method} {path}: response is not JSON ({exc})",
                status=response.status,
            ) from exc
        if not 200 <= response.status < 300:
            message = (
                data.get("error", raw.decode("utf-8", "replace"))
                if isinstance(data, dict)
                else str(data)
            )
            raise ScanServiceError(
                f"{method} {path} -> HTTP {response.status}: {message}",
                status=response.status,
                payload=data if isinstance(data, dict) else {},
            )
        return data

    # -- endpoints -----------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``: status, version, resident model."""
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics``: the service's counters/percentiles snapshot."""
        return self._request("GET", "/metrics")

    def metrics_prometheus(self) -> str:
        """``GET /metrics?format=prometheus``: the text exposition, raw.

        Kept out of :meth:`_request` on purpose — that path JSON-decodes
        every response, while the Prometheus exposition is plain text
        (parse it with :func:`repro.obs.metrics.parse_prometheus_text`).
        """
        conn = self._connection()
        try:
            conn.request(
                "GET", "/metrics?format=prometheus", headers={"Accept": "text/plain"}
            )
            response = conn.getresponse()
            raw = response.read()
        except socket.timeout:
            self.close()
            raise ScanServiceError(
                f"GET /metrics?format=prometheus timed out after {self.timeout}s"
            )
        except (http.client.HTTPException, ConnectionError) as exc:
            self.close()
            raise ScanServiceError(
                f"GET /metrics?format=prometheus failed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        if response.status != 200:
            raise ScanServiceError(
                f"GET /metrics?format=prometheus -> HTTP {response.status}",
                status=response.status,
            )
        return raw.decode("utf-8")

    def reload(self, model: Optional[str] = None) -> Dict[str, Any]:
        """``POST /reload``: force hot-reload checks (all models or one)."""
        payload: Dict[str, Any] = {}
        if model is not None:
            payload["model"] = model
        return self._request("POST", "/reload", payload=payload)

    def promote(self) -> Dict[str, Any]:
        """``POST /promote``: force-promote the rollout challenger now."""
        return self._request("POST", "/promote", payload={})

    def scan(
        self,
        sources: Optional[Sequence[Dict[str, str]]] = None,
        paths: Optional[Sequence[str]] = None,
        confidence: Optional[float] = None,
        model: Optional[str] = None,
    ) -> Dict[str, Any]:
        """``POST /scan`` with raw payload pieces (see ``docs/SERVING.md``).

        ``model`` routes the request to a named registered model instead
        of the current champion (multi-model serving).
        """
        payload: Dict[str, Any] = {}
        if sources:
            payload["sources"] = list(sources)
        if paths:
            payload["paths"] = list(paths)
        if confidence is not None:
            payload["confidence"] = confidence
        if model is not None:
            payload["model"] = model
        return self._request("POST", "/scan", payload=payload)

    def scan_texts(
        self,
        pairs: Sequence[Tuple[str, str]],
        confidence: Optional[float] = None,
        model: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Scan in-memory ``(name, verilog_text)`` pairs."""
        return self.scan(
            sources=[{"name": name, "source": text} for name, text in pairs],
            confidence=confidence,
            model=model,
        )

    def wait_until_ready(
        self, timeout: float = 15.0, interval: float = 0.05
    ) -> Dict[str, Any]:
        """Poll ``/healthz`` until the service answers (start-up helper).

        Returns the first healthy payload; raises
        :class:`ScanServiceError` if the deadline passes first.
        """
        deadline = time.monotonic() + timeout
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (ScanServiceError, OSError) as exc:
                last = exc
                self.close()
                time.sleep(interval)
        raise ScanServiceError(
            f"scan service at {self.host}:{self.port} not ready "
            f"within {timeout:.1f}s (last error: {last})"
        )

    def iter_scan_records(
        self, response: Dict[str, Any]
    ) -> List[Dict[str, Any]]:
        """The ``records`` list of a scan response (shape-checked)."""
        records = response.get("records")
        if not isinstance(records, list):
            raise ScanServiceError("scan response is missing its 'records' list")
        return records
