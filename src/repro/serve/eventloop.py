"""A ``selectors``-based event-loop HTTP front-end for the scan service.

The thread-per-connection front-end (`http.server`) spends one OS thread —
stack, scheduler slot, GIL churn — per open connection, which caps how
many mostly-idle keep-alive clients one process can hold.  This module
replaces it with the classic single-threaded reactor: one
:mod:`selectors` loop owns every socket (non-blocking accept, read and
write), parses HTTP/1.1 with keep-alive and pipelining, and hands each
complete request to the :class:`~repro.serve.server.ScanService`.  Scan
requests are answered **asynchronously**: the service submits them to a
micro-batch worker and the completion is posted back to the loop through
a queue plus self-pipe wakeup, so the loop never blocks on inference and
a thousand idle connections cost a thousand socket objects, not a
thousand threads.

The split of responsibilities is deliberate:

* the front-end owns **transport**: sockets, buffering, request framing
  (request line, headers, ``Content-Length`` bodies, ``Expect:
  100-continue``), keep-alive/pipelining order, slow-loris and idle
  timeouts, and graceful drain;
* the service owns **semantics**: routing, JSON parsing, model selection,
  batching, metrics.  The only contract between them is
  ``service.dispatch(request, respond)`` with a :class:`ParsedRequest`
  in and a thread-safe ``respond(status, payload)`` callback out.

Responses on one connection are written in request order: the parser
pauses after dispatching a request and resumes (possibly on bytes that
were pipelined long ago) only once the response is queued, so
micro-batch completion order can never reorder a client's stream.
"""

from __future__ import annotations

import json
import logging
import selectors
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..faults import (
    DEFAULT_MAX_PIPELINED_REQUESTS,
    DEFAULT_OUTBUF_BUDGET_BYTES,
    DEFAULT_RETRY_AFTER_S,
)

logger = logging.getLogger(__name__)

#: How long (seconds) a connection may dribble out one request before the
#: loop closes it (the slow-loris guard).  The clock starts at the first
#: byte of a request and resets once the request is complete, so a
#: long-running *scan* is unaffected — only a slow *sender* is.
DEFAULT_REQUEST_TIMEOUT_S = 10.0

#: How long (seconds) an idle keep-alive connection (no partial request,
#: nothing in flight) is kept before the loop reclaims it.
DEFAULT_IDLE_TIMEOUT_S = 120.0

#: Listen backlog.  The thread-per-connection server used 128; the event
#: loop accepts in a tight non-blocking loop, so the backlog only needs
#: to absorb a burst between two ``select`` wakeups.
DEFAULT_BACKLOG = 1024

_MAX_LINE_BYTES = 65536
_MAX_HEADER_LINES = 100
_RECV_BYTES = 65536
#: Pipelined bytes buffered beyond the current request's body while a
#: response is pending.  Past this the connection's read interest is
#: paused — a client cannot make the server buffer unbounded input.
_PIPELINE_SLACK_BYTES = 131072

_REASONS = {
    100: "Continue",
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

# Request-parse phases of one connection.
_PH_REQUEST_LINE = 0
_PH_HEADERS = 1
_PH_BODY = 2


@dataclass
class ParsedRequest:
    """One complete HTTP request as handed to ``service.dispatch``.

    ``headers`` keys are lower-cased; ``body`` is the complete
    ``Content-Length``-framed payload (possibly empty).  Framing problems
    never reach the service — the front-end already answered them.
    """

    method: str
    path: str
    headers: Dict[str, str]
    body: bytes


#: Content type of the Prometheus text exposition format (the default
#: :class:`RawResponse` content type, since that is its one producer).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


@dataclass
class RawResponse:
    """A pre-encoded response body with an explicit content type.

    The service layer normally answers with JSON-serialisable dicts; a
    handler that must speak another wire format (the Prometheus text
    exposition behind ``GET /metrics?format=prometheus``) wraps its
    encoded bytes in one of these and both front-ends pass them through
    verbatim instead of JSON-encoding.
    """

    body: bytes
    content_type: str = PROMETHEUS_CONTENT_TYPE


class _Connection:
    """Per-socket state machine: buffers, parse phase, in-flight marker."""

    __slots__ = (
        "sock",
        "addr",
        "inbuf",
        "outbuf",
        "phase",
        "method",
        "path",
        "version",
        "headers",
        "header_lines",
        "body_length",
        "keep_alive",
        "awaiting_response",
        "pending",
        "inflight_keep_alive",
        "needs_continue",
        "close_after_flush",
        "closed",
        "reading_paused",
        "last_activity",
        "request_started",
        "mask",
    )

    def __init__(self, sock: socket.socket, addr: Tuple[str, int]) -> None:
        self.sock = sock
        self.addr = addr
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.phase = _PH_REQUEST_LINE
        self.method = ""
        self.path = ""
        self.version = ""
        self.headers: Dict[str, str] = {}
        self.header_lines = 0
        self.body_length = 0
        self.keep_alive = True
        # A request was dispatched and its respond() has not fired yet;
        # later pipelined requests queue in ``pending`` so responses keep
        # request order.
        self.awaiting_response = False
        # Parsed-ahead pipelined units awaiting their turn, in request
        # order.  Entries are ("request", ParsedRequest, keep_alive) or
        # ("reject", status, payload, extra_headers, reject_reason).
        # Invariant: non-empty only while ``awaiting_response`` is True.
        self.pending: Deque[Tuple[Any, ...]] = deque()
        # keep_alive as parsed for the *in-flight* request; parse-ahead
        # may rewrite ``keep_alive`` for a later one before we respond.
        self.inflight_keep_alive = True
        # A deferred "100 Continue": owed to the client, but only once
        # every earlier response has been written.
        self.needs_continue = False
        self.close_after_flush = False
        self.closed = False
        self.reading_paused = False
        self.last_activity = time.monotonic()
        # monotonic() when the first byte of the current request arrived;
        # None while idle between requests.  Basis of the slow-loris clock.
        self.request_started: Optional[float] = None
        self.mask = selectors.EVENT_READ


class EventLoopFrontend:
    """Single-threaded reactor serving HTTP for a :class:`ScanService`.

    Parameters
    ----------
    host / port:
        Bind address; the listening socket is created (and a bad bind
        fails) at construction, before any thread starts.  ``port=0``
        picks a free port, readable from :attr:`port`.
    service:
        The request router.  Must provide ``dispatch(request, respond)``
        where ``respond(status, payload_dict)`` may be called from any
        thread, exactly once per request.
    max_body_bytes:
        Largest accepted ``Content-Length``; beyond it the request is
        answered 400 without buffering the body.
    request_timeout_s / idle_timeout_s:
        Slow-loris and idle keep-alive reclaim clocks (see module
        constants).  Connections with a response in flight are exempt
        from both — a slow *scan* is the batch worker's business.
    backlog:
        Listen backlog for accept bursts.
    max_outbuf_bytes:
        Per-connection response buffer budget.  A client that stops
        reading while responses accumulate past this is closed — it
        cannot pin unbounded memory in the server.
    max_pipelined_requests:
        How many parsed-ahead pipelined requests one connection may
        queue behind the in-flight one.  The next request past the
        budget is answered 429 (with ``Retry-After``) and the
        connection closed after that response.
    on_reject:
        Optional callable ``on_reject(reason)`` invoked whenever the
        front-end sheds work for a budget reason (currently always
        ``"connection_budget"``).  Exceptions from the hook are logged
        and swallowed — metrics must never hurt the loop.
    """

    def __init__(
        self,
        host: str,
        port: int,
        service: Any,
        max_body_bytes: int = 64 * 1024 * 1024,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
        idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
        backlog: int = DEFAULT_BACKLOG,
        max_outbuf_bytes: int = DEFAULT_OUTBUF_BUDGET_BYTES,
        max_pipelined_requests: int = DEFAULT_MAX_PIPELINED_REQUESTS,
        on_reject: Optional[Callable[[str], None]] = None,
    ) -> None:
        self._service = service
        self.max_body_bytes = max_body_bytes
        self.request_timeout_s = request_timeout_s
        self.idle_timeout_s = idle_timeout_s
        self.max_outbuf_bytes = max_outbuf_bytes
        self.max_pipelined_requests = max_pipelined_requests
        self._on_reject = on_reject
        self._listener = socket.create_server(
            (host, port), backlog=backlog, reuse_port=False
        )
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        # Completions posted by other threads (batch workers) and drained
        # by the loop; the socketpair is the self-pipe that wakes select().
        self._completions: Deque[
            Tuple[_Connection, int, Any, Optional[Dict[str, str]]]
        ] = deque()
        self._completion_lock = threading.Lock()
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._wake_send.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ, None)
        self._connections: Dict[socket.socket, _Connection] = {}
        self._thread: Optional[threading.Thread] = None
        self._loop_ident: Optional[int] = None
        self._draining = False
        self._stopping = False
        self._stop_deadline = 0.0
        self._dead = False

    # -- addressing ----------------------------------------------------------
    @property
    def host(self) -> str:
        """The bound host."""
        return self._listener.getsockname()[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with ``port=0``)."""
        return self._listener.getsockname()[1]

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Run the loop on a background thread."""
        self._thread = threading.Thread(target=self.run, name="repro-serve-loop")
        self._thread.start()

    def run(self) -> None:
        """Run the reactor on the calling thread until shutdown completes."""
        self._loop_ident = threading.get_ident()
        try:
            while True:
                if self._stopping and self._quiescent():
                    break
                if self._stopping and time.monotonic() >= self._stop_deadline:
                    break
                timeout = min(0.1, max(0.01, self.request_timeout_s / 4.0))
                events = self._selector.select(timeout)
                for key, mask in events:
                    if key.fileobj is self._listener:
                        self._accept()
                    elif key.fileobj is self._wake_recv:
                        self._drain_wakeup()
                    else:
                        conn = self._connections.get(key.fileobj)  # type: ignore[arg-type]
                        if conn is None:
                            continue
                        if mask & selectors.EVENT_WRITE:
                            self._on_writable(conn)
                        if mask & selectors.EVENT_READ and not conn.closed:
                            self._on_readable(conn)
                self._apply_completions()
                self._sweep_timeouts()
                if self._draining and not self._listener_closed():
                    self._close_listener()
        finally:
            self._dead = True
            self._teardown()

    def begin_drain(self) -> None:
        """Stop accepting new connections; in-flight work continues.

        Thread-safe.  The first phase of graceful shutdown: called before
        the batch workers drain so no new scans can arrive behind them.
        """
        self._draining = True
        self._wakeup()

    def shutdown(self, grace_s: float = 2.0) -> None:
        """Flush pending responses, close every socket, stop the loop.

        Thread-safe and idempotent.  The loop keeps running up to
        ``grace_s`` seconds to write out responses already queued (the
        batchers must have drained by now, so no *new* completions can
        appear), then tears everything down.  Joins the loop thread when
        the front-end was started with :meth:`start`.
        """
        self._draining = True
        self._stopping = True
        self._stop_deadline = time.monotonic() + grace_s
        self._wakeup()
        if self._thread is not None:
            self._thread.join(timeout=grace_s + 10.0)
            self._thread = None
        if self._loop_ident is None and not self._dead:
            # The loop never ran (constructed but not started): release
            # the listener and selector here instead.
            self._dead = True
            self._teardown()

    def open_connection_count(self) -> int:
        """How many client connections the loop currently holds."""
        return len(self._connections)

    # -- loop internals ------------------------------------------------------
    def _quiescent(self) -> bool:
        """True when nothing is in flight and every out-buffer is flushed."""
        for conn in self._connections.values():
            if conn.awaiting_response or conn.outbuf or conn.pending:
                return False
        with self._completion_lock:
            if self._completions:
                return False
        return True

    def _listener_closed(self) -> bool:
        return self._listener.fileno() < 0

    def _close_listener(self) -> None:
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        try:
            self._listener.close()
        except OSError:
            pass

    def _teardown(self) -> None:
        """Close every socket and the selector (end of :meth:`run`)."""
        for conn in list(self._connections.values()):
            self._close_conn(conn)
        self._close_listener()
        try:
            self._selector.unregister(self._wake_recv)
        except (KeyError, ValueError):
            pass
        self._wake_recv.close()
        self._wake_send.close()
        self._selector.close()

    def _wakeup(self) -> None:
        """Make a blocked ``select`` return now (self-pipe trick)."""
        try:
            self._wake_send.send(b"\x00")
        except (OSError, ValueError):
            pass  # loop already tearing down

    def _drain_wakeup(self) -> None:
        try:
            while self._wake_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _accept(self) -> None:
        """Accept every connection currently queued on the listener."""
        while True:
            try:
                sock, addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed under us (drain) or EMFILE burst
            if self._draining:
                sock.close()
                continue
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass  # not TCP (tests may use socketpairs)
            conn = _Connection(sock, addr)
            self._connections[sock] = conn
            self._selector.register(sock, conn.mask, None)

    def _set_mask(self, conn: _Connection, mask: int) -> None:
        if conn.closed or conn.mask == mask:
            return
        conn.mask = mask
        try:
            self._selector.modify(conn.sock, mask, None)
        except (KeyError, ValueError, OSError):
            pass

    def _close_conn(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        self._connections.pop(conn.sock, None)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    # -- reading + parsing ---------------------------------------------------
    def _on_readable(self, conn: _Connection) -> None:
        """Drain the socket into ``inbuf`` and advance the parser."""
        while True:
            try:
                chunk = conn.sock.recv(_RECV_BYTES)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close_conn(conn)
                return
            if not chunk:
                # EOF.  A half-sent request can never complete; respond
                # to nothing, flush what is queued, close.
                if conn.outbuf:
                    conn.close_after_flush = True
                    self._set_mask(conn, selectors.EVENT_WRITE)
                elif not conn.awaiting_response:
                    self._close_conn(conn)
                else:
                    conn.close_after_flush = True
                return
            conn.inbuf += chunk
            conn.last_activity = time.monotonic()
            # Start the request clock at the first byte, not the first
            # complete request line — a slow loris trickling a partial
            # line must burn the request budget, not the idle budget.
            if conn.request_started is None and not conn.awaiting_response:
                conn.request_started = conn.last_activity
            if len(chunk) < _RECV_BYTES:
                break
        self._advance(conn)
        self._maybe_pause_reading(conn)

    def _maybe_pause_reading(self, conn: _Connection) -> None:
        """Bound pipelined buffering while a response is pending."""
        if conn.closed:
            return
        limit = self.max_body_bytes + _PIPELINE_SLACK_BYTES
        if (conn.awaiting_response or conn.pending) and len(conn.inbuf) > limit:
            if not conn.reading_paused:
                conn.reading_paused = True
                self._set_mask(conn, conn.mask & ~selectors.EVENT_READ)
        elif conn.reading_paused:
            conn.reading_paused = False
            self._set_mask(conn, conn.mask | selectors.EVENT_READ)

    def _advance(self, conn: _Connection) -> None:
        """Parse as many complete requests out of ``inbuf`` as possible.

        Parsing continues while a response is in flight — complete
        successors queue in ``conn.pending`` (up to the pipelining
        budget) so responses still go out in request order.  Stops when
        the buffered bytes no longer contain a complete unit, or for
        good once a reject is queued (a reject always ends the
        connection, so later bytes are irrelevant).
        """
        while not conn.closed and not conn.close_after_flush:
            if conn.pending and conn.pending[-1][0] == "reject":
                return
            if conn.phase == _PH_REQUEST_LINE:
                line = self._take_line(conn)
                if line is None:
                    if not conn.inbuf:
                        # Everything buffered was stray CRLF: the read
                        # handler's first-byte stamp must not leave an
                        # empty, innocent keep-alive on the 408 clock.
                        conn.request_started = None
                    return
                stripped = line.strip()
                if not stripped:
                    continue  # tolerate stray CRLF between pipelined requests
                conn.request_started = time.monotonic()
                words = stripped.split()
                if len(words) != 3 or not words[2].startswith(b"HTTP/"):
                    self._close_conn(conn)  # not HTTP; don't guess
                    return
                conn.method = words[0].decode("latin-1")
                conn.path = words[1].decode("latin-1")
                conn.version = words[2].decode("latin-1")
                conn.headers = {}
                conn.header_lines = 0
                conn.phase = _PH_HEADERS
            elif conn.phase == _PH_HEADERS:
                line = self._take_line(conn)
                if line is None:
                    return
                conn.header_lines += 1
                if conn.header_lines > _MAX_HEADER_LINES:
                    self._close_conn(conn)  # hostile header stream
                    return
                if line in (b"\r\n", b"\n"):
                    if not self._finish_headers(conn):
                        return
                else:
                    key, _, value = line.partition(b":")
                    conn.headers[key.decode("latin-1").strip().lower()] = (
                        value.decode("latin-1").strip()
                    )
            else:  # _PH_BODY
                if len(conn.inbuf) < conn.body_length:
                    return  # body still arriving
                body = bytes(conn.inbuf[: conn.body_length])
                del conn.inbuf[: conn.body_length]
                self._dispatch(conn, body)

    def _take_line(self, conn: _Connection) -> Optional[bytes]:
        """Pop one ``\\n``-terminated line from ``inbuf`` (None: incomplete).

        Closes the connection outright when a line exceeds the 64 KiB
        bound — an over-long request line or header is hostile input, not
        something to buffer.
        """
        idx = conn.inbuf.find(b"\n")
        if idx < 0:
            if len(conn.inbuf) > _MAX_LINE_BYTES:
                self._close_conn(conn)
            return None
        if idx + 1 > _MAX_LINE_BYTES:
            self._close_conn(conn)
            return None
        line = bytes(conn.inbuf[: idx + 1])
        del conn.inbuf[: idx + 1]
        return line

    def _finish_headers(self, conn: _Connection) -> bool:
        """Validate framing once the blank line arrives; start the body phase.

        Returns False when the request was answered (or the connection
        closed) here — i.e. the parse loop should stop advancing.
        """
        conn.keep_alive = not (
            conn.version == "HTTP/1.0"
            or conn.headers.get("connection", "").lower() == "close"
        )
        if "transfer-encoding" in conn.headers:
            # Content-Length framing only; refusing is honest, guessing
            # would desynchronise the connection.
            self._fail_request(
                conn, 501, {"error": "chunked transfer encoding is not supported"}
            )
            return False
        try:
            length = int(conn.headers.get("content-length", 0))
        except (TypeError, ValueError):
            # Body length unknown: the socket cannot be drained safely.
            self._fail_request(
                conn, 400, {"error": "invalid Content-Length header"}
            )
            return False
        if length < 0 or length > self.max_body_bytes:
            # Body left unread on the socket; the close discards it.
            self._fail_request(
                conn,
                400,
                {"error": f"request body must be 0..{self.max_body_bytes} bytes"},
            )
            return False
        conn.body_length = length
        if (
            conn.headers.get("expect", "").lower() == "100-continue"
            and len(conn.inbuf) < length
        ):
            # curl withholds bodies >1 KiB until the interim 100 arrives.
            if conn.awaiting_response or conn.pending:
                # Deferred: the interim line must not overtake queued
                # responses for earlier pipelined requests.
                conn.needs_continue = True
            else:
                conn.outbuf += b"HTTP/1.1 100 Continue\r\n\r\n"
                self._flush(conn)
        conn.phase = _PH_BODY
        return True

    def _fail_request(
        self, conn: _Connection, status: int, payload: Dict[str, Any]
    ) -> None:
        """Answer a framing error in request order, then close.

        With nothing in flight the error is written immediately.  While
        earlier pipelined requests are still being answered it queues
        behind them as a reject entry, so the client's response stream
        stays ordered; either way the connection closes after it.
        """
        if conn.awaiting_response or conn.pending:
            conn.pending.append(("reject", status, payload, None, None))
            return
        conn.close_after_flush = True
        self._respond_now(conn, status, payload, keep_alive=False)

    # -- dispatch + responses ------------------------------------------------
    def _dispatch(self, conn: _Connection, body: bytes) -> None:
        """Hand one complete request to the service, or queue it in order.

        With a response already in flight the request joins
        ``conn.pending`` — unless the connection has hit its pipelining
        budget, in which case a 429 reject entry is queued instead and
        the connection will close after answering it.
        """
        conn.phase = _PH_REQUEST_LINE
        conn.request_started = None
        conn.needs_continue = False  # the withheld body arrived after all
        request = ParsedRequest(
            method=conn.method, path=conn.path, headers=conn.headers, body=body
        )
        if conn.awaiting_response or conn.pending:
            if len(conn.pending) >= self.max_pipelined_requests:
                conn.pending.append(
                    (
                        "reject",
                        429,
                        {"error": "too many pipelined requests on one connection"},
                        {"Retry-After": str(DEFAULT_RETRY_AFTER_S)},
                        "connection_budget",
                    )
                )
            else:
                conn.pending.append(("request", request, conn.keep_alive))
            return
        self._dispatch_request(conn, request, conn.keep_alive)

    def _dispatch_request(
        self, conn: _Connection, request: ParsedRequest, keep_alive: bool
    ) -> None:
        """Put one request in flight: mark the connection, call the service."""
        conn.awaiting_response = True
        conn.inflight_keep_alive = keep_alive
        respond = self._make_responder(conn)
        try:
            self._service.dispatch(request, respond)
        except Exception as exc:  # never let a routing bug kill the loop
            logger.exception(
                "dispatch failed for %s %s", request.method, request.path
            )
            respond(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _make_responder(self, conn: _Connection) -> Any:
        """A once-only, any-thread ``respond(status, payload)`` callback.

        Called on the loop thread it writes directly; called from a batch
        worker it posts a completion and wakes the loop.  Duplicate calls
        (a service bug) are dropped with a log line rather than
        corrupting the connection's response ordering.
        """
        fired = threading.Event()

        def respond(
            status: int,
            payload: Any,
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            """Queue the response for ``conn`` (thread-safe, once only)."""
            if fired.is_set():
                logger.error("duplicate respond() for %s %s", conn.method, conn.path)
                return
            fired.set()
            if threading.get_ident() == self._loop_ident:
                self._apply_response(conn, status, payload, headers)
                return
            if self._dead:
                return  # loop already gone; the socket is closed anyway
            with self._completion_lock:
                self._completions.append((conn, status, payload, headers))
            self._wakeup()

        return respond

    def _apply_completions(self) -> None:
        """Drain worker-thread completions into connection out-buffers."""
        while True:
            with self._completion_lock:
                if not self._completions:
                    return
                conn, status, payload, headers = self._completions.popleft()
            self._apply_response(conn, status, payload, headers)

    def _apply_response(
        self,
        conn: _Connection,
        status: int,
        payload: Any,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        """Serialise + queue one response, then pump the pipelined backlog."""
        if conn.closed:
            return
        conn.awaiting_response = False
        keep = conn.inflight_keep_alive and not self._draining
        if not keep:
            # Before the write: an optimistic flush may drain the whole
            # response right now, and the close must ride that flush.
            conn.close_after_flush = True
        self._respond_now(
            conn, status, payload, keep_alive=keep, extra_headers=extra_headers
        )
        if conn.closed or conn.close_after_flush:
            return
        self._pump_pending(conn)
        if not conn.closed and not conn.close_after_flush:
            # Pipelined requests may already be buffered; parse on.
            self._advance(conn)
            self._maybe_pause_reading(conn)

    def _pump_pending(self, conn: _Connection) -> None:
        """After a response, start the next queued pipelined unit (if any).

        A queued request goes in flight with the keep-alive it was
        parsed with; a queued reject is written (counting its shed
        reason) and closes the connection.  With the queue empty, a
        deferred ``100 Continue`` owed to the client is finally written.
        """
        if conn.pending:
            entry = conn.pending.popleft()
            if entry[0] == "request":
                _, request, keep_alive = entry
                self._dispatch_request(conn, request, keep_alive)
            else:
                _, status, payload, extra_headers, reason = entry
                if reason is not None:
                    self._count_reject(reason)
                conn.close_after_flush = True
                self._respond_now(
                    conn,
                    status,
                    payload,
                    keep_alive=False,
                    extra_headers=extra_headers,
                )
            return
        if (
            conn.needs_continue
            and not conn.awaiting_response
            and conn.phase == _PH_BODY
        ):
            # Every earlier response is out; the client may now send the
            # body it withheld behind Expect: 100-continue.
            conn.needs_continue = False
            conn.outbuf += b"HTTP/1.1 100 Continue\r\n\r\n"
            self._flush(conn)

    def _respond_now(
        self,
        conn: _Connection,
        status: int,
        payload: Any,
        keep_alive: bool = True,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        """Append one fully-framed response to the out-buffer.

        ``payload`` is a JSON-serialisable dict (the normal case) or a
        :class:`RawResponse` carrying pre-encoded bytes and their content
        type.  ``extra_headers`` adds verbatim header lines (the 429
        path's ``Retry-After``).
        """
        if isinstance(payload, RawResponse):
            body = payload.body
            content_type = payload.content_type
        else:
            body = (
                json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
            ).encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        extra = ""
        if extra_headers:
            extra = "".join(f"{k}: {v}\r\n" for k, v in extra_headers.items())
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extra}"
            "\r\n"
        ).encode("latin-1")
        conn.outbuf += head + body
        self._flush(conn)

    # -- writing -------------------------------------------------------------
    def _flush(self, conn: _Connection) -> None:
        """Write as much of the out-buffer as the socket takes right now."""
        if conn.closed:
            return
        while conn.outbuf:
            try:
                sent = conn.sock.send(conn.outbuf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close_conn(conn)
                return
            if sent <= 0:
                break
            del conn.outbuf[:sent]
        if len(conn.outbuf) > self.max_outbuf_bytes:
            # The peer stopped reading while responses piled up; holding
            # the bytes would let one slow client pin server memory.
            self._count_reject("connection_budget")
            logger.warning(
                "closing %s: out-buffer over budget (%d > %d bytes)",
                conn.addr,
                len(conn.outbuf),
                self.max_outbuf_bytes,
            )
            self._close_conn(conn)
            return
        if conn.outbuf:
            self._set_mask(conn, conn.mask | selectors.EVENT_WRITE)
        else:
            self._set_mask(conn, conn.mask & ~selectors.EVENT_WRITE)
            if conn.close_after_flush:
                self._close_conn(conn)

    def _on_writable(self, conn: _Connection) -> None:
        self._flush(conn)

    def _count_reject(self, reason: str) -> None:
        """Report one shed unit of work to the observer hook, safely."""
        if self._on_reject is None:
            return
        try:
            self._on_reject(reason)
        except Exception:  # a metrics hook failure must never hurt the loop
            logger.exception("on_reject hook failed for reason %r", reason)

    # -- timeouts ------------------------------------------------------------
    def _sweep_timeouts(self) -> None:
        """Reclaim slow-loris and idle connections (in-flight ones exempt)."""
        now = time.monotonic()
        for conn in list(self._connections.values()):
            if conn.closed or conn.awaiting_response or conn.outbuf:
                continue
            if (
                conn.request_started is not None
                and now - conn.request_started > self.request_timeout_s
            ):
                # Slow loris: a partial request older than the budget.
                conn.close_after_flush = True
                self._respond_now(
                    conn, 408, {"error": "request timeout"}, keep_alive=False
                )
            elif (
                conn.request_started is None
                and now - conn.last_activity > self.idle_timeout_s
            ):
                self._close_conn(conn)
