"""Load benchmark for the scan service (written to ``BENCH_serve.json``).

Measures the configurations that matter for a long-lived scan service fed
by many small requests (the high-QPS traffic micro-batching exists for):

* ``serve_unbatched_sequential`` — one client, one request at a time,
  micro-batching disabled (``max_batch=1``): every request is its own
  forward pass and its own cache flush.  This is "one-request-per-
  forward-pass serving", the baseline all speedups are recorded against;
* ``serve_unbatched_concurrent`` — the same unbatched server under
  concurrent clients: shows how little raw concurrency buys when every
  request still pays the per-call overheads;
* ``serve_microbatch_concurrent`` — concurrent clients against the
  micro-batching server: requests coalesce into shared forward passes and
  shared cache flushes.  The headline number;
* ``serve_microbatch_fused_f32`` — the same micro-batched serving with
  ``--backend fused_f32``: batched forward passes run the fused float32
  inference path instead of the golden float64 one;
* ``serve_cached_rescan`` — the micro-batching server re-serving a corpus
  it has already scanned: the steady-state cost of repeat traffic (pure
  cache hits);
* ``serve_rescan_after_reload`` — the recalibration workflow end to end:
  before every timed round the detector is recalibrated on fresh data,
  saved over the artifact and hot-reloaded (``POST /reload``), then the
  same corpus is re-served.  The new fingerprint makes every result-cache
  lookup miss by construction, but the model-independent feature tier
  stays warm across the reload, so each design costs only its share of a
  batched forward pass — no HDL parsing, no feature extraction;
* ``serve_eventloop_multimodel`` — fleet serving on the event-loop
  front-end: two registered models behind one process, concurrent
  clients alternating the ``model`` field request to request, so every
  wave splits across two independent micro-batch lanes sharing one
  feature store.  Measures what per-request routing and the extra lane
  cost on top of single-model micro-batched serving.

Every timed run scans *fresh* design content (a new deterministic corpus
per invocation) so the cache never short-circuits the comparison — except
``serve_cached_rescan``, which measures exactly that.  Client-side
latencies are collected per request; their percentiles land in each
result's ``meta`` alongside requests/sec.

Everything runs in one process over loopback HTTP with keep-alive
clients, so the ratios measure serving architecture, not the network.
"""

from __future__ import annotations

import json
import multiprocessing
import socket
import tempfile
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.config import ClassifierConfig, NoodleConfig
from ..features.pipeline import extract_modalities
from ..perf import BenchmarkSuite, TimingResult
from ..trojan import SuiteConfig, TrojanDataset
from ..engine.artifacts import save_detector
from ..engine.training import recalibrate_detector, train_detector
from .client import ScanServiceClient
from .server import ScanService

#: Default number of scan requests per timed run.  Long enough that the
#: per-run fixed costs (client threads starting, sockets connecting, the
#: first partial batches) are noise against steady-state serving.
DEFAULT_N_REQUESTS = 240

#: Default number of concurrent clients for the concurrent measurements.
#: On a small host the sweet spot is a few more clients than the batch
#: cap — enough backlog that the batch worker never idles between waves,
#: not so many threads that context switching eats the win.
DEFAULT_CLIENTS = 32

#: Micro-batch window used by the batched measurement (milliseconds).
#: Closed-loop clients send their next request the moment the previous
#: response lands, so a few milliseconds is enough to catch the wave; a
#: large window would only add latency while the clients sit blocked.
DEFAULT_BENCH_WINDOW_MS = 5.0

#: Micro-batch design cap used by the batched measurement.
DEFAULT_BENCH_MAX_BATCH = 32


def _combinational_block(name: str, width: int, mask: int) -> str:
    """A small combinational block (masked AND)."""
    return f"""module {name} (a, b, y);
  input [{width - 1}:0] a;
  input [{width - 1}:0] b;
  output [{width - 1}:0] y;
  assign y = (a & b) ^ {width}'d{mask};
endmodule
"""


def _registered_block(name: str, width: int, mask: int) -> str:
    """A small registered block (enable + reset register)."""
    return f"""module {name} (clk, rst, en, d, q);
  input clk;
  input rst;
  input en;
  input [{width - 1}:0] d;
  output reg [{width - 1}:0] q;
  wire [{width - 1}:0] m;
  assign m = d ^ {width}'d{mask};
  always @(posedge clk)
    begin
      if (rst)
        q <= {width}'d0;
      else
        begin
          if (en)
            q <= m;
        end
    end
endmodule
"""


def build_request_corpus(
    n_designs: int, seed: int = 0
) -> List[Tuple[str, str]]:
    """Deterministic corpus of small, unique designs (one per request).

    The modules are the shape of high-rate serving traffic — small IP
    blocks submitted one per request, a mix of combinational and
    registered logic — and every module body embeds the seed and index,
    so two corpora with different seeds never collide in the
    content-addressed cache.
    """
    rng = np.random.default_rng(seed)
    corpus: List[Tuple[str, str]] = []
    for i in range(n_designs):
        width = int(rng.integers(2, 6))
        mask = int(rng.integers(1, 2**width))
        name = f"blk_{seed}_{i}"
        template = _registered_block if i % 3 == 0 else _combinational_block
        corpus.append((name, template(name, width, mask)))
    return corpus


class _LoadClient:
    """Minimal keep-alive HTTP/1.1 client used only by the load generator.

    A load generator must saturate the *server*; ``http.client`` spends
    ~0.1ms per request on header bookkeeping, which at the measured
    throughputs would be a visible client-side tax on every mode.  This
    client speaks just enough HTTP/1.1 for ``POST /scan``: one persistent
    ``TCP_NODELAY`` socket, handwritten request bytes, and a
    Content-Length-framed response reader.  Correctness-path callers use
    :class:`repro.serve.client.ScanServiceClient` instead.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buffer = b""

    def close(self) -> None:
        """Close the persistent socket."""
        self.sock.close()

    def scan_one(
        self, name: str, text: str, model: Optional[str] = None
    ) -> Dict[str, object]:
        """POST one single-design scan request; returns the response JSON."""
        body: Dict[str, object] = {"sources": [{"name": name, "source": text}]}
        if model is not None:
            body["model"] = model
        payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
        head = (
            f"POST /scan HTTP/1.1\r\nHost: {self.host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        ).encode("ascii")
        self.sock.sendall(head + payload)
        status, body = self._read_response()
        data = json.loads(body)
        if status != 200:
            raise RuntimeError(f"scan request failed: HTTP {status}: {data}")
        return data

    def _read_response(self) -> Tuple[int, bytes]:
        """Read one Content-Length-framed response off the socket."""
        while b"\r\n\r\n" not in self._buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("scan service closed the connection")
            self._buffer += chunk
        head, _, rest = self._buffer.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        status = int(lines[0].split()[1])
        length = 0
        for line in lines[1:]:
            key, _, value = line.partition(b":")
            if key.strip().lower() == b"content-length":
                length = int(value.strip())
        while len(rest) < length:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("scan service closed mid-response")
            rest += chunk
        self._buffer = rest[length:]
        return status, rest[:length]


def _fire_requests(
    corpus: List[Tuple[str, str]],
    clients: int,
    host: str,
    port: int,
    route_models: Optional[List[str]] = None,
) -> List[float]:
    """Send one scan request per corpus entry across ``clients`` threads.

    Each thread owns a keep-alive :class:`_LoadClient` and pulls work
    from a shared queue until the corpus is exhausted.  When
    ``route_models`` is given, requests carry the ``model`` routing field
    round-robin across those names (the multi-model workload).  Returns
    the per-request client-side latencies (seconds).  Any request
    failure propagates.
    """
    work: Deque[Tuple[str, str, Optional[str]]] = deque(
        (name, text, route_models[i % len(route_models)] if route_models else None)
        for i, (name, text) in enumerate(corpus)
    )
    latencies: List[float] = []
    failures: List[BaseException] = []
    lock = threading.Lock()

    def run_client() -> None:
        local: List[float] = []
        client = _LoadClient(host, port)
        try:
            while True:
                try:
                    name, text, model = work.popleft()
                except IndexError:
                    break
                t_start = time.perf_counter()
                client.scan_one(name, text, model=model)
                local.append(time.perf_counter() - t_start)
        finally:
            client.close()
        with lock:
            latencies.extend(local)

    def guarded() -> None:
        try:
            run_client()
        except BaseException as exc:  # surfaced to the caller below
            with lock:
                failures.append(exc)

    threads = [
        threading.Thread(target=guarded, name=f"bench-client-{i}")
        for i in range(max(1, clients))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]
    return latencies


def _latency_meta(latencies: List[float]) -> Dict[str, float]:
    """p50/p99/mean of a latency sample, in milliseconds."""
    ordered = np.sort(np.array(latencies))
    return {
        "p50_ms": float(np.percentile(ordered, 50) * 1000.0),
        "p99_ms": float(np.percentile(ordered, 99) * 1000.0),
        "mean_ms": float(ordered.mean() * 1000.0),
    }


class _ServingMode:
    """One serving configuration under measurement (service + workload).

    The benchmark keeps every mode's service alive for its whole duration
    and interleaves the timed rounds across modes, so a noisy stretch on
    a shared machine taxes all modes alike instead of sinking whichever
    one happened to be running — and best-of-N picks each mode's quiet
    round.
    """

    def __init__(
        self,
        name: str,
        artifact: Path,
        cache_dir: Path,
        seed_base: int,
        n_requests: int,
        clients: int,
        batch_window_s: float,
        max_batch: int,
        rescan: bool = False,
        workers: Optional[int] = 1,
        pre_round: Optional[Callable[["_ServingMode"], None]] = None,
        backend: str = "numpy",
        artifacts: Optional[Dict[str, Path]] = None,
    ) -> None:
        self.name = name
        self.n_requests = n_requests
        self.clients = clients
        self.rescan = rescan
        #: Hook run before every timed round, *outside* the timed region
        #: (the rescan-after-reload mode recalibrates + hot-reloads here).
        self.pre_round = pre_round
        self._seed = seed_base
        self.samples: List[float] = []
        self.latencies: List[float] = []
        #: Multi-model workloads route requests round-robin across every
        #: registered model name; single-model workloads omit the field.
        self.route_models = sorted(artifacts) if artifacts else None
        self.service = ScanService(
            artifact if artifacts is None else None,
            port=0,
            batch_window_s=batch_window_s,
            max_batch=max_batch,
            cache_dir=cache_dir,
            workers=workers,
            backend=backend,
            artifacts=artifacts,
        ).start()
        try:
            with ScanServiceClient(self.service.host, self.service.port) as probe:
                probe.wait_until_ready()
        except Exception:  # probe failed: tear down the service, then re-raise
            self.service.shutdown()  # do not leak the serving threads
            raise
        self._rescan_corpus = (
            build_request_corpus(n_requests, seed=self._next_seed())
            if rescan
            else None
        )
        self.meta: Dict[str, object] = {
            "n_requests": n_requests,
            "clients": clients,
            "batch_window_ms": batch_window_s * 1000.0,
            "max_batch": max_batch,
            "workers": workers,
            "backend": backend,
            "frontend": self.service.frontend,
            "cpu_count": multiprocessing.cpu_count() or 1,
        }
        if self.route_models:
            self.meta["models"] = list(self.route_models)

    def _next_seed(self) -> int:
        self._seed += 1
        return self._seed

    def run_once(self, record: bool = True) -> None:
        """One timed run: a fresh corpus (or the rescan corpus) served whole."""
        if self.pre_round is not None:
            self.pre_round(self)
        corpus = self._rescan_corpus or build_request_corpus(
            self.n_requests, seed=self._next_seed()
        )
        t_start = time.perf_counter()
        latencies = _fire_requests(
            corpus,
            self.clients,
            self.service.host,
            self.service.port,
            route_models=self.route_models,
        )
        elapsed = time.perf_counter() - t_start
        if record:
            self.samples.append(elapsed)
            # Pool latencies over every recorded round so the percentiles
            # describe the same measurement window as best/mean/std.
            self.latencies.extend(latencies)

    def finish(self, repeats: int) -> TimingResult:
        """Shut the service down and fold the samples into a result."""
        snapshot = self.service.metrics.snapshot()
        self.service.shutdown()
        samples = np.array(self.samples)
        result = TimingResult(
            name=self.name,
            best_s=float(samples.min()),
            mean_s=float(samples.mean()),
            std_s=float(samples.std()),
            repeats=repeats,
            meta=dict(self.meta),
        )
        result.meta["requests_per_sec"] = self.n_requests / result.best_s
        result.meta["latency"] = _latency_meta(self.latencies)
        result.meta["mean_batch_designs"] = snapshot["mean_batch_designs"]
        result.meta["max_batch_designs"] = snapshot["max_batch_designs"]
        result.meta["cache_hit_rate"] = snapshot["cache_hit_rate"]
        result.meta["feature_hits"] = snapshot.get("feature_hits", 0)
        result.meta["reloads"] = snapshot.get("reloads", 0)
        return result


def run_serve_benchmark(
    output: Union[str, Path],
    n_requests: int = DEFAULT_N_REQUESTS,
    clients: int = DEFAULT_CLIENTS,
    repeats: int = 3,
    seed: int = 0,
    batch_window_ms: float = DEFAULT_BENCH_WINDOW_MS,
    max_batch: int = DEFAULT_BENCH_MAX_BATCH,
    workers: Optional[int] = 1,
    smoke: bool = False,
) -> BenchmarkSuite:
    """Train a quick detector, time the serving modes, write the JSON.

    ``smoke=True`` shrinks everything (fewer requests, one repeat) so CI
    can exercise the full path in seconds; the committed
    ``BENCH_serve.json`` comes from a full run.  ``workers`` is the
    per-batch feature-extraction process count handed to every service —
    ``1`` on the single-core reference container; multi-core machines can
    record their own variant with ``bench-serve --workers N``.  The
    ``serve_eventloop_multimodel`` mode is the designated multi-core
    scenario and always runs with at least two extraction processes;
    every result's ``meta.workers`` + ``meta.cpu_count`` say which kind
    of recording it is.  Returns the populated :class:`BenchmarkSuite`
    (already written to ``output``).
    """
    if smoke:
        n_requests = min(n_requests, 16)
        clients = min(clients, 4)
        repeats = 1
    rng = np.random.default_rng(seed)
    dataset = TrojanDataset.generate(
        SuiteConfig(n_trojan_free=20, n_trojan_infected=10, seed=seed + 1)
    )
    features = extract_modalities(dataset)
    train, _ = features.stratified_split(0.2, rng)
    result = train_detector(
        train,
        strategy="late",
        config=NoodleConfig(
            classifier=ClassifierConfig(epochs=10, seed=seed),
            validation_fraction=0.2,
            seed=seed,
        ),
    )

    suite = BenchmarkSuite("serve")
    window_s = batch_window_ms / 1000.0

    with tempfile.TemporaryDirectory() as workdir:
        artifact = save_detector(result.model, Path(workdir) / "artifact")
        # The reload mode rewrites its artifact every round; give it a
        # private copy so the other modes' services never see a changed
        # fingerprint mid-measurement.
        reload_artifact = save_detector(result.model, Path(workdir) / "artifact_reload")
        # The multi-model mode registers two artifacts behind one process.
        # A second copy of the same detector keeps the comparison about
        # serving architecture (routing + an extra batch lane), not about
        # model quality — each corpus entry is unique and routed to exactly
        # one model, so the shared fingerprint never cross-hits the cache.
        fleet_artifact = save_detector(result.model, Path(workdir) / "artifact_fleet")
        recal_state = {"seed": seed + 5_000_000}

        def _recalibrate_and_reload(mode: "_ServingMode") -> None:
            # Outside the timed region: recalibrate on fresh labelled data
            # (new calibration arrays => new fingerprint), save over the
            # mode's artifact, force the hot reload.  The timed round that
            # follows then serves a cold result tier + warm feature tier.
            recal_state["seed"] += 1
            fresh = extract_modalities(
                TrojanDataset.generate(
                    SuiteConfig(
                        n_trojan_free=8, n_trojan_infected=4, seed=recal_state["seed"]
                    )
                )
            )
            recalibrate_detector(result.model, fresh)
            save_detector(result.model, reload_artifact)
            with ScanServiceClient(mode.service.host, mode.service.port) as client:
                client.reload()

        # Disjoint seed bases per mode: corpus content must never repeat
        # across runs or modes, or the cache would cross-contaminate the
        # comparison.
        mode_specs = [
            dict(
                name="serve_unbatched_sequential",
                cache="cache_seq",
                seed_base=seed + 1_000_000,
                clients=1,
                batch_window_s=0.0,
                max_batch=1,
            ),
            dict(
                name="serve_unbatched_concurrent",
                cache="cache_unbatched",
                seed_base=seed + 2_000_000,
                clients=clients,
                batch_window_s=0.0,
                max_batch=1,
            ),
            dict(
                name="serve_microbatch_concurrent",
                cache="cache_microbatch",
                seed_base=seed + 3_000_000,
                clients=clients,
                batch_window_s=window_s,
                max_batch=max_batch,
            ),
            dict(
                name="serve_microbatch_fused_f32",
                cache="cache_fused",
                seed_base=seed + 7_000_000,
                clients=clients,
                batch_window_s=window_s,
                max_batch=max_batch,
                backend="fused_f32",
            ),
            dict(
                name="serve_eventloop_multimodel",
                cache="cache_multimodel",
                seed_base=seed + 8_000_000,
                clients=clients,
                batch_window_s=window_s,
                max_batch=max_batch,
                artifacts={"alpha": artifact, "beta": fleet_artifact},
                # The designated multi-core scenario: always at least two
                # extraction processes per batch scan, whatever --workers
                # says (meta.workers / meta.cpu_count identify the shape).
                workers=max(2, workers or 1),
            ),
            dict(
                name="serve_cached_rescan",
                cache="cache_rescan",
                seed_base=seed + 4_000_000,
                clients=clients,
                batch_window_s=window_s,
                max_batch=max_batch,
                rescan=True,
            ),
            dict(
                name="serve_rescan_after_reload",
                cache="cache_reload",
                seed_base=seed + 6_000_000,
                clients=clients,
                batch_window_s=window_s,
                max_batch=max_batch,
                rescan=True,
                artifact=reload_artifact,
                pre_round=_recalibrate_and_reload,
            ),
        ]
        modes: List[_ServingMode] = []
        try:
            for spec in mode_specs:  # inside the try: no leak on a failed start
                modes.append(
                    _ServingMode(
                        spec["name"],
                        spec.get("artifact", artifact),
                        Path(workdir) / spec["cache"],
                        seed_base=spec["seed_base"],
                        n_requests=n_requests,
                        clients=spec["clients"],
                        batch_window_s=spec["batch_window_s"],
                        max_batch=spec["max_batch"],
                        rescan=bool(spec.get("rescan")),
                        workers=spec.get("workers", workers),
                        pre_round=spec.get("pre_round"),
                        backend=spec.get("backend", "numpy"),
                        artifacts=spec.get("artifacts"),
                    )
                )
            for mode in modes:
                mode.run_once(record=False)  # warmup: connections, code paths
            for _ in range(repeats):
                for mode in modes:  # interleaved rounds, see _ServingMode
                    mode.run_once()
            results = {mode.name: suite.add(mode.finish(repeats)) for mode in modes}
        finally:
            # A failed round must still stop every service: their serving
            # and handler threads are non-daemonic, and leaking them would
            # hang the process instead of exiting with the error.
            for mode in modes:
                mode.service.shutdown()  # idempotent

    sequential = results["serve_unbatched_sequential"]
    for name in (
        "serve_unbatched_concurrent",
        "serve_microbatch_concurrent",
        "serve_microbatch_fused_f32",
        "serve_eventloop_multimodel",
        "serve_cached_rescan",
        "serve_rescan_after_reload",
    ):
        results[name].meta["smoke"] = smoke
        suite.record_speedup(name, sequential, results[name])
    sequential.meta["smoke"] = smoke
    # The acceptance ratio: micro-batched concurrent clients vs the same
    # concurrency served one-request-per-forward-pass.
    suite.record_speedup(
        "serve_microbatch_vs_unbatched_concurrent",
        results["serve_unbatched_concurrent"],
        results["serve_microbatch_concurrent"],
    )
    # The feature-tier ratio: post-reload rescans (cold result tier, warm
    # feature tier) vs the same micro-batched serving paying extraction.
    suite.record_speedup(
        "serve_reload_vs_cold_microbatch",
        results["serve_microbatch_concurrent"],
        results["serve_rescan_after_reload"],
    )
    # The backend ratio: the same micro-batched serving with the fused
    # float32 forward path instead of the golden float64 one.
    suite.record_speedup(
        "serve_fused_f32_vs_numpy_microbatch",
        results["serve_microbatch_concurrent"],
        results["serve_microbatch_fused_f32"],
    )
    # The fleet ratio: the same micro-batched concurrency split across
    # two routed models (two lanes, one feature store) vs one model.
    suite.record_speedup(
        "serve_multimodel_vs_single_microbatch",
        results["serve_microbatch_concurrent"],
        results["serve_eventloop_multimodel"],
    )
    suite.write_json(output)
    return suite
