"""Online scan service: long-lived HTTP serving on top of the scan engine.

Where :mod:`repro.engine` answers "scan this corpus once, fast",
``repro.serve`` answers "keep answering scan requests forever, fast".  It
is stdlib-only (``selectors`` + ``threading``) and built from six pieces:

* :mod:`repro.serve.registry` — :class:`ModelRegistry`: any number of
  detector artifacts loaded once, keyed by fingerprint, hot-reloaded when
  an artifact changes on disk (recalibration without downtime), all
  sharing one model-independent feature store;
* :mod:`repro.serve.batching` — :class:`MicroBatcher`: concurrent
  ``/scan`` requests for one model coalesce for a small window into one
  batched forward pass + conformal p-value call and one result-cache
  flush;
* :mod:`repro.serve.rollout` — :class:`RolloutController`:
  champion–challenger promotion gated on live triage agreement (a new
  model shadow-scans sampled traffic and is promoted only when it agrees
  with the resident champion);
* :mod:`repro.serve.eventloop` — :class:`EventLoopFrontend`: a
  single-threaded ``selectors`` reactor holding thousands of keep-alive
  connections without a thread apiece, feeding the batch workers
  asynchronously;
* :mod:`repro.serve.server` — :class:`ScanService`: the HTTP surface
  (``POST /scan`` with per-request model routing, ``GET /healthz``,
  ``GET /metrics``, ``POST /reload``, ``POST /promote``) with graceful
  drain on shutdown;
* :mod:`repro.serve.client` — :class:`ScanServiceClient`: a thin
  keep-alive client used by tests, tools and the load benchmark
  (:mod:`repro.serve.bench`, which writes ``BENCH_serve.json``).

Start one with ``python -m repro serve --artifact NAME=DIR ...``; see
``docs/SERVING.md`` for the API reference and semantics.
"""

from .batching import BatcherClosed, BatchResult, MicroBatchError, MicroBatcher
from .client import ScanServiceClient, ScanServiceError
from .eventloop import EventLoopFrontend, ParsedRequest
from .metrics import LatencyWindow, ServiceMetrics
from .registry import ModelRegistry, RegisteredModel
from .rollout import RolloutController, RolloutError
from .server import RequestError, ScanService

__all__ = [
    "BatchResult",
    "BatcherClosed",
    "EventLoopFrontend",
    "LatencyWindow",
    "MicroBatchError",
    "MicroBatcher",
    "ModelRegistry",
    "ParsedRequest",
    "RegisteredModel",
    "RequestError",
    "RolloutController",
    "RolloutError",
    "ScanService",
    "ScanServiceClient",
    "ScanServiceError",
    "ServiceMetrics",
]
