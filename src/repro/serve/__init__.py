"""Online scan service: long-lived HTTP serving on top of the scan engine.

Where :mod:`repro.engine` answers "scan this corpus once, fast",
``repro.serve`` answers "keep answering scan requests forever, fast".  It
is stdlib-only (``http.server`` + ``threading``) and built from four
pieces:

* :mod:`repro.serve.registry` — :class:`ModelRegistry`: detector
  artifacts loaded once, keyed by fingerprint, hot-reloaded when the
  artifact changes on disk (recalibration without downtime);
* :mod:`repro.serve.batching` — :class:`MicroBatcher`: concurrent
  ``/scan`` requests coalesce for a small window into one batched
  forward pass + conformal p-value call and one result-cache flush;
* :mod:`repro.serve.server` — :class:`ScanService`: the HTTP surface
  (``POST /scan``, ``GET /healthz``, ``GET /metrics``, ``POST /reload``)
  with graceful drain on shutdown;
* :mod:`repro.serve.client` — :class:`ScanServiceClient`: a thin
  keep-alive client used by tests, tools and the load benchmark
  (:mod:`repro.serve.bench`, which writes ``BENCH_serve.json``).

Start one with ``python -m repro serve --artifact <dir>``; see
``docs/SERVING.md`` for the API reference and semantics.
"""

from .batching import BatcherClosed, BatchResult, MicroBatchError, MicroBatcher
from .client import ScanServiceClient, ScanServiceError
from .metrics import LatencyWindow, ServiceMetrics
from .registry import ModelRegistry, RegisteredModel
from .server import RequestError, ScanService

__all__ = [
    "BatchResult",
    "BatcherClosed",
    "LatencyWindow",
    "MicroBatchError",
    "MicroBatcher",
    "ModelRegistry",
    "RegisteredModel",
    "RequestError",
    "ScanService",
    "ScanServiceClient",
    "ScanServiceError",
    "ServiceMetrics",
]
