"""Thread-safe service metrics behind the ``GET /metrics`` endpoint.

The scan service is a long-lived process, so operators need the classic
serving signals: how many requests of each kind arrived, how large the
micro-batches actually are (the whole point of batching), how the request
latency distribution looks, and how often the result cache short-circuits
a forward pass.  :class:`ServiceMetrics` collects all of it under one lock
with O(1) updates; latency percentiles come from a bounded ring buffer of
recent observations so the snapshot cost stays flat no matter how long the
server has been up.

Every mutator also mirrors its increment into the process-wide
:data:`repro.obs.metrics.REGISTRY` families declared below, which back the
Prometheus exposition at ``GET /metrics?format=prometheus``.  The JSON
snapshot stays per-:class:`ServiceMetrics` instance (its schema is frozen
for existing clients), while the registry aggregates across every service
instance in the process — standard Prometheus semantics.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from ..obs.metrics import REGISTRY

#: How many recent request latencies the percentile window keeps.
DEFAULT_LATENCY_WINDOW = 2048

# Prometheus families mirrored by ServiceMetrics (registered once, at
# import time — lint rule R7 enforces the single registration site).
_REQUESTS = REGISTRY.counter(
    "repro_serve_requests_total", "HTTP requests received, by route.", labels=("route",)
)
_HTTP_ERRORS = REGISTRY.counter(
    "repro_serve_http_errors_total", "HTTP requests answered with an error status."
)
_SCAN_REQUESTS = REGISTRY.counter(
    "repro_serve_scan_requests_total", "Completed POST /scan requests."
)
_DESIGNS = REGISTRY.counter(
    "repro_serve_designs_total", "Designs scanned across all requests."
)
_CACHE_HITS = REGISTRY.counter(
    "repro_serve_cache_hits_total", "Designs served from the result cache."
)
_FEATURE_HITS = REGISTRY.counter(
    "repro_serve_feature_hits_total",
    "Designs that skipped extraction via the feature store.",
)
_DESIGN_ERRORS = REGISTRY.counter(
    "repro_serve_design_errors_total", "Designs that failed to scan."
)
_BATCHES = REGISTRY.counter(
    "repro_serve_batches_total", "Micro-batches flushed by the batch workers."
)
_BATCHED_DESIGNS = REGISTRY.counter(
    "repro_serve_batched_designs_total", "Designs carried by flushed micro-batches."
)
_RELOADS = REGISTRY.counter(
    "repro_serve_reloads_total", "Model artifact hot reloads (automatic or forced)."
)
_MODEL_SCANS = REGISTRY.counter(
    "repro_serve_model_scans_total",
    "Scan requests routed to each registered model.",
    labels=("model",),
)
_MODEL_DESIGNS = REGISTRY.counter(
    "repro_serve_model_designs_total",
    "Designs scanned by each registered model.",
    labels=("model",),
)
_SHADOW_SCANS = REGISTRY.counter(
    "repro_serve_shadow_scans_total", "Challenger shadow scans."
)
_SHADOW_DESIGNS = REGISTRY.counter(
    "repro_serve_shadow_designs_total", "Designs mirrored to shadow challengers."
)
_PROMOTIONS = REGISTRY.counter(
    "repro_serve_promotions_total", "Champion promotions (any trigger)."
)
_FORCED_PROMOTIONS = REGISTRY.counter(
    "repro_serve_forced_promotions_total", "Champion promotions forced via POST /promote."
)
_REJECTED = REGISTRY.counter(
    "repro_serve_rejected_total",
    "Requests shed by overload protection, by reason.",
    labels=("reason",),
)
_LATENCY = REGISTRY.histogram(
    "repro_serve_scan_latency_seconds", "End-to-end POST /scan latency."
)
_UPTIME = REGISTRY.gauge(
    "repro_serve_uptime_seconds", "Seconds since the service started."
)


class LatencyWindow:
    """Bounded ring buffer of recent latencies with percentile queries.

    Keeping every latency ever observed would grow without bound in a
    long-lived server; keeping only a counter+sum would lose the tail.  A
    fixed-size ring of the most recent ``size`` samples is the standard
    middle ground: percentiles reflect *current* behaviour and the memory
    cost is constant.
    """

    def __init__(self, size: int = DEFAULT_LATENCY_WINDOW) -> None:
        if size <= 0:
            raise ValueError("latency window size must be positive")
        self.size = size
        self._samples: List[float] = []
        self._next = 0

    def __len__(self) -> int:
        """Number of samples currently held (never more than ``size``)."""
        return len(self._samples)

    def observe(self, seconds: float) -> None:
        """Record one latency sample, evicting the oldest once full."""
        if len(self._samples) < self.size:
            self._samples.append(seconds)
        else:
            self._samples[self._next] = seconds
            self._next = (self._next + 1) % self.size

    def percentile(self, q: float) -> Optional[float]:
        """The ``q``-th percentile (0-100) of the window, ``None`` if empty.

        Uses the nearest-rank method on a sorted copy — exact, simple, and
        cheap at the window sizes involved.
        """
        return self.percentiles([q])[0]

    def percentiles(self, qs: List[float]) -> List[Optional[float]]:
        """Several percentiles from **one** sorted pass over the window.

        ``snapshot()`` asks for p50/p95/p99 together on every ``/metrics``
        call; sorting once instead of per-quantile keeps that cost flat.
        """
        if any(not 0.0 <= q <= 100.0 for q in qs):
            raise ValueError("percentile must be in [0, 100]")
        if not self._samples:
            return [None] * len(qs)
        ordered = sorted(self._samples)
        top = len(ordered) - 1
        return [ordered[max(0, min(top, round(q / 100.0 * top)))] for q in qs]


class ServiceMetrics:
    """Counters, batch-size stats and latency percentiles for one service.

    Every mutator takes the internal lock, so handler threads and the
    batch worker can update concurrently; :meth:`snapshot` returns a plain
    ``dict`` ready for JSON serialisation.
    """

    def __init__(self, latency_window: int = DEFAULT_LATENCY_WINDOW) -> None:
        self._lock = threading.Lock()
        self._latency = LatencyWindow(latency_window)
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self.requests_total = 0
        self.requests_by_route: Dict[str, int] = {}
        self.http_errors = 0
        self.scan_requests = 0
        self.designs_total = 0
        self.cache_hits = 0
        self.feature_hits = 0
        self.design_errors = 0
        self.batches_total = 0
        self.batched_designs_total = 0
        self.max_batch_designs = 0
        self.reloads = 0
        self.scans_by_model: Dict[str, int] = {}
        self.designs_by_model: Dict[str, int] = {}
        self.shadow_scans = 0
        self.shadow_designs = 0
        self.promotions = 0
        self.forced_promotions = 0
        self.rejected_by_reason: Dict[str, int] = {}

    # -- recording -----------------------------------------------------------
    def observe_request(self, route: str, error: bool = False) -> None:
        """Count one HTTP request against its route (and errors separately)."""
        with self._lock:
            self.requests_total += 1
            self.requests_by_route[route] = self.requests_by_route.get(route, 0) + 1
            if error:
                self.http_errors += 1
        _REQUESTS.labels(route=route).inc()
        if error:
            _HTTP_ERRORS.inc()

    def observe_scan(
        self,
        n_designs: int,
        n_cache_hits: int,
        n_errors: int,
        seconds: float,
        model: Optional[str] = None,
    ) -> None:
        """Record one completed ``/scan`` request and its end-to-end latency.

        ``model`` is the registered model name the request was routed to
        (multi-model serving); when given, per-model request/design
        counters are kept alongside the totals.
        """
        with self._lock:
            self.scan_requests += 1
            self.designs_total += n_designs
            self.cache_hits += n_cache_hits
            self.design_errors += n_errors
            self._latency.observe(seconds)
            if model is not None:
                self.scans_by_model[model] = self.scans_by_model.get(model, 0) + 1
                self.designs_by_model[model] = (
                    self.designs_by_model.get(model, 0) + n_designs
                )
        _SCAN_REQUESTS.inc()
        _DESIGNS.inc(n_designs)
        _CACHE_HITS.inc(n_cache_hits)
        _DESIGN_ERRORS.inc(n_errors)
        _LATENCY.observe(seconds)
        if model is not None:
            _MODEL_SCANS.labels(model=model).inc()
            _MODEL_DESIGNS.labels(model=model).inc(n_designs)

    def observe_batch(self, n_requests: int, n_designs: int) -> None:
        """Record one micro-batch flush (its request and design counts)."""
        with self._lock:
            self.batches_total += 1
            self.batched_designs_total += n_designs
            self.max_batch_designs = max(self.max_batch_designs, n_designs)
        _BATCHES.inc()
        _BATCHED_DESIGNS.inc(n_designs)

    def observe_feature_hits(self, n_hits: int) -> None:
        """Count designs served from the model-independent feature tier.

        A feature hit is a design that needed a forward pass (the result
        cache missed — e.g. right after a hot reload) but skipped HDL
        parsing and feature extraction because its content hash was in the
        feature store.
        """
        with self._lock:
            self.feature_hits += n_hits
        _FEATURE_HITS.inc(n_hits)

    def observe_reload(self) -> None:
        """Count one model hot-reload (automatic or via ``POST /reload``)."""
        with self._lock:
            self.reloads += 1
        _RELOADS.inc()

    def observe_shadow(self, n_designs: int) -> None:
        """Count one challenger shadow scan (champion–challenger rollout)."""
        with self._lock:
            self.shadow_scans += 1
            self.shadow_designs += n_designs
        _SHADOW_SCANS.inc()
        _SHADOW_DESIGNS.inc(n_designs)

    def observe_rejected(self, reason: str) -> None:
        """Count one request shed by overload protection.

        ``reason`` is one of ``overload`` (the global admission gate),
        ``deadline`` (the request's ``X-Repro-Deadline-Ms`` expired), or
        ``connection_budget`` (a per-connection pipelining/outbuf budget
        was exceeded).
        """
        with self._lock:
            self.rejected_by_reason[reason] = (
                self.rejected_by_reason.get(reason, 0) + 1
            )
        _REJECTED.labels(reason=reason).inc()

    def observe_promotion(self, forced: bool = False) -> None:
        """Count one champion promotion (``forced`` for ``POST /promote``)."""
        with self._lock:
            self.promotions += 1
            if forced:
                self.forced_promotions += 1
        _PROMOTIONS.inc()
        if forced:
            _FORCED_PROMOTIONS.inc()

    # -- reading -------------------------------------------------------------
    def sync_exposition(self) -> None:
        """Refresh point-in-time gauges before a Prometheus render."""
        _UPTIME.set(self.uptime_seconds())

    def uptime_seconds(self) -> float:
        """Seconds since this service started (no lock, no snapshot cost)."""
        return time.monotonic() - self._started_monotonic

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready view of every counter plus derived rates/percentiles."""
        with self._lock:
            mean_batch = (
                self.batched_designs_total / self.batches_total
                if self.batches_total
                else 0.0
            )
            hit_rate = (
                self.cache_hits / self.designs_total if self.designs_total else 0.0
            )
            return {
                "uptime_seconds": time.monotonic() - self._started_monotonic,
                "requests_total": self.requests_total,
                "requests_by_route": dict(self.requests_by_route),
                "http_errors": self.http_errors,
                "scan_requests": self.scan_requests,
                "designs_total": self.designs_total,
                "cache_hits": self.cache_hits,
                "cache_hit_rate": hit_rate,
                "feature_hits": self.feature_hits,
                "design_errors": self.design_errors,
                "batches_total": self.batches_total,
                "batched_designs_total": self.batched_designs_total,
                "mean_batch_designs": mean_batch,
                "max_batch_designs": self.max_batch_designs,
                "reloads": self.reloads,
                "scans_by_model": dict(self.scans_by_model),
                "designs_by_model": dict(self.designs_by_model),
                "shadow_scans": self.shadow_scans,
                "shadow_designs": self.shadow_designs,
                "promotions": self.promotions,
                "forced_promotions": self.forced_promotions,
                "rejected_by_reason": dict(self.rejected_by_reason),
                "latency_seconds": dict(
                    zip(
                        ("p50", "p95", "p99"),
                        self._latency.percentiles([50, 95, 99]),
                    ),
                    count=len(self._latency),
                ),
            }
