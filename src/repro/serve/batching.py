"""Micro-batching queue: coalesce concurrent scan requests into one forward pass.

Per-request inference is wasteful: a batch-1 CNN forward pass is almost
all fixed overhead (layer setup, im2col, the conformal ``searchsorted``
calls), and with the result cache attached every request also pays a
lock + read-merge-write cache flush.  :class:`MicroBatcher` amortises
both: handler threads enqueue their designs and block, a single worker
thread collects everything that arrives within ``batch_window_s`` (up to
``max_batch`` designs), runs **one** :meth:`ScanEngine.scan_sources` call
for the whole batch — one vectorized forward pass, one ``searchsorted``
p-value call, one cache flush — and hands each request back exactly its
own slice of the records.

Because every scan funnels through the one worker thread, the engine and
its cache tiers are only ever touched single-threaded — the batcher is
also the concurrency guard that makes a process-wide :class:`ScanEngine`
safe under a threaded HTTP server.

Batch assembly is copy-lean end to end: the engine preallocates each
micro-batch's feature matrices once and fills slices in place (feature
rows served from the model-independent feature store are read-only views
into its packed shards, copied exactly once into the batch), and on the
way out each request receives a zero-copy slice of the shared record
list.  After a hot reload the feature tier stays warm — the registry owns
it, not the swapped engine — so post-reload batches of known designs skip
straight to the forward pass.

Determinism: records for a request are produced by the same code path as
a serial engine scan (the engine guarantees record order matches input
order and that batch size does not change p-values), so a served scan is
byte-identical to ``python -m repro scan`` on the same sources.  Requests
asking for different confidence levels are grouped and scanned per level
within the batch — p-values are level-independent, but
:class:`repro.core.TrojanDecision` regions are not, so levels never mix
inside one engine call.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple
from collections import deque

from ..core.results import ScanRecord
from ..engine.scan import ScanReport, ScanSource
from ..faults import Deadline
from .metrics import ServiceMetrics

#: Default window (seconds) the worker keeps a batch open for stragglers.
DEFAULT_BATCH_WINDOW_S = 0.025

#: Default cap on designs per micro-batch (the forward-pass batch size).
DEFAULT_MAX_BATCH = 64

#: Error string a request sheds with when its deadline expired while it
#: waited in the queue.  Async ``on_done`` callbacks receive it verbatim
#: (they get ``(None, error_str)``, not an exception) and compare against
#: this constant to map the shed to a 504 rather than a 500.
DEADLINE_ERROR = "deadline exceeded before scan"


class MicroBatchError(RuntimeError):
    """Raised to the submitting thread when its batch failed or was refused."""


class BatcherClosed(MicroBatchError):
    """Raised when submitting to a batcher that is shutting down."""


class BatcherOverloaded(MicroBatchError):
    """Raised when the queue is at its admission bound (``max_queue_depth``)."""


class DeadlineExceeded(MicroBatchError):
    """Raised when a request's deadline expired before its batch ran."""


@dataclass
class BatchResult:
    """What one request gets back from its ride in a micro-batch."""

    records: List[ScanRecord]
    n_cache_hits: int
    n_errors: int
    #: Total designs in the micro-batch this request shared (>= its own).
    batch_designs: int
    #: Requests coalesced into that micro-batch (>= 1).
    batch_requests: int
    #: Confidence level the decisions were built at.
    confidence_level: float
    #: Fingerprint of the model that actually scanned this batch (set by
    #: scan callables that know it, e.g. the serving layer; "" otherwise).
    #: Responses must report this — not "the current model" — or a hot
    #: reload between scan and response mis-attributes the records.
    fingerprint: str = ""


@dataclass
class _Pending:
    """One enqueued request waiting for its batch to execute."""

    sources: List[ScanSource]
    confidence: Optional[float]
    #: Optional request deadline; an expired request is shed with
    #: :data:`DEADLINE_ERROR` before the forward pass instead of wasting
    #: batch capacity on an answer nobody is waiting for.
    deadline: Optional[Deadline] = None
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[BatchResult] = None
    error: Optional[str] = None
    #: Completion callback for asynchronous submitters (the event-loop
    #: front-end): invoked from the worker thread once ``result`` or
    #: ``error`` is set.  ``None`` for blocking :meth:`MicroBatcher.submit`
    #: callers, which wait on ``done`` instead.
    on_done: Optional[Callable[[Optional[BatchResult], Optional[str]], None]] = None

    def finish(self) -> None:
        """Mark this request complete and notify whoever is waiting on it."""
        self.done.set()
        if self.on_done is not None:
            try:
                self.on_done(self.result, self.error)
            except Exception:  # a bad callback must not kill the worker
                logging.getLogger(__name__).exception(
                    "micro-batch completion callback failed"
                )


class MicroBatcher:
    """Single-worker request coalescer in front of a batched scan callable.

    Parameters
    ----------
    scan_fn:
        ``(sources, confidence) -> ScanReport`` — typically a bound
        engine/service method.  Called only from the worker thread.
    batch_window_s:
        How long the worker holds the batch open after the first request
        arrives, waiting for more.  ``0`` batches only what is already
        queued (pure backlog coalescing, no added latency).
    max_batch:
        Design cap per batch; the worker closes a batch early once adding
        the next request would exceed it.  A single request larger than
        the cap still runs (whole, in its own batch) — requests are never
        split across forward passes.
    metrics:
        Optional :class:`ServiceMetrics` that receives per-batch stats.
    after_batch:
        Optional callable invoked (from the worker thread) after each
        batch's results have been handed back — i.e. off the response
        critical path.  The serving layer hangs the deferred result-cache
        flush here, so requesters never wait on disk I/O.
    max_queue_depth:
        Admission bound: requests submitted while this many are already
        queued (accepted but not yet collected into a batch) raise
        :class:`BatcherOverloaded` instead of growing the queue without
        bound.  ``None`` (the default) disables the gate.
    quiescence_s:
        Adaptive early close: a batch is closed once this long passes
        with no new arrivals, even if the window has time left (see
        :meth:`_collect_batch`).  ``None`` disables the early close and
        always waits out the full window.
    """

    #: Default for ``quiescence_s`` (seconds).
    DEFAULT_QUIESCENCE_S = 0.002

    def __init__(
        self,
        scan_fn: Callable[[List[ScanSource], Optional[float]], ScanReport],
        batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
        max_batch: int = DEFAULT_MAX_BATCH,
        metrics: Optional[ServiceMetrics] = None,
        after_batch: Optional[Callable[[], None]] = None,
        max_queue_depth: Optional[int] = None,
        quiescence_s: Optional[float] = DEFAULT_QUIESCENCE_S,
    ) -> None:
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1 (or None)")
        self.scan_fn = scan_fn
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        self.metrics = metrics
        self.after_batch = after_batch
        self.max_queue_depth = max_queue_depth
        self.quiescence_s = (
            quiescence_s if quiescence_s is not None else batch_window_s
        )
        self._cond = threading.Condition()
        self._queue: Deque[_Pending] = deque()
        self._in_flight = 0
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._worker.start()

    @property
    def in_flight_requests(self) -> int:
        """Requests accepted but not yet answered (queued or mid-batch).

        Introspection only (tests, drain assertions): the count is stale
        the moment it is read.
        """
        with self._cond:
            return self._in_flight

    @property
    def queue_depth(self) -> int:
        """Requests accepted but not yet collected into a batch.

        The quantity the admission gate bounds; introspection only — the
        count is stale the moment it is read.
        """
        with self._cond:
            return len(self._queue)

    def _admit(self, pending: _Pending) -> None:
        """Enqueue one request under the lock, enforcing the admission gate."""
        with self._cond:
            if self._closed:
                raise BatcherClosed("scan service is shutting down")
            if (
                self.max_queue_depth is not None
                and len(self._queue) >= self.max_queue_depth
            ):
                raise BatcherOverloaded(
                    f"scan queue is full ({self.max_queue_depth} requests waiting)"
                )
            self._queue.append(pending)
            self._in_flight += 1
            self._cond.notify_all()

    # -- submitting ----------------------------------------------------------
    def submit(
        self,
        sources: Sequence[ScanSource],
        confidence: Optional[float] = None,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> BatchResult:
        """Enqueue designs and block until their batch has been scanned.

        Called from any number of handler threads.  Raises
        :class:`BatcherClosed` when the batcher is draining/closed,
        :class:`BatcherOverloaded` when the queue is at its admission
        bound, :class:`DeadlineExceeded` when ``deadline`` expired before
        the batch ran, :class:`MicroBatchError` when the batch's scan
        call failed, and ``TimeoutError`` if ``timeout`` elapses first.
        """
        if not sources:
            raise MicroBatchError("a scan request needs at least one source")
        pending = _Pending(
            sources=list(sources), confidence=confidence, deadline=deadline
        )
        self._admit(pending)
        if not pending.done.wait(timeout):
            raise TimeoutError(
                f"micro-batch result did not arrive within {timeout}s"
            )
        if pending.error == DEADLINE_ERROR:
            raise DeadlineExceeded(pending.error)
        if pending.error is not None:
            raise MicroBatchError(pending.error)
        assert pending.result is not None
        return pending.result

    def submit_nowait(
        self,
        sources: Sequence[ScanSource],
        confidence: Optional[float] = None,
        on_done: Optional[
            Callable[[Optional[BatchResult], Optional[str]], None]
        ] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        """Enqueue designs without blocking; completion arrives via callback.

        The asynchronous twin of :meth:`submit`, built for callers that
        must never block — the event-loop front-end enqueues here and
        keeps multiplexing sockets.  ``on_done(result, error)`` is
        invoked from the **worker thread** once the batch executed
        (exactly one of the two arguments is non-``None``; a request shed
        for an expired ``deadline`` gets ``error == DEADLINE_ERROR``); it
        must be quick and must not raise.  Raises :class:`BatcherClosed`
        / :class:`BatcherOverloaded` / :class:`MicroBatchError`
        synchronously only for requests that never made it into the
        queue.
        """
        if not sources:
            raise MicroBatchError("a scan request needs at least one source")
        pending = _Pending(
            sources=list(sources),
            confidence=confidence,
            deadline=deadline,
            on_done=on_done,
        )
        self._admit(pending)

    # -- lifecycle -----------------------------------------------------------
    def close(self, timeout: Optional[float] = 30.0) -> bool:
        """Stop accepting requests, drain the queue, stop the worker.

        Requests already enqueued are still scanned (graceful drain); new
        :meth:`submit` calls raise :class:`BatcherClosed` immediately.
        Idempotent.  Returns ``True`` when the worker actually finished
        within ``timeout`` — callers that share state with the worker
        (e.g. the serving layer's cache flush) must check this before
        touching it.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._worker.join(timeout)
        return not self._worker.is_alive()

    @property
    def closed(self) -> bool:
        """Whether the batcher has begun shutting down."""
        return self._closed

    # -- worker --------------------------------------------------------------
    def _collect_batch(self) -> List[_Pending]:
        """Block for the first request, then hold the window for stragglers.

        The window is adaptive: rather than always sleeping out the full
        ``batch_window_s``, the worker waits in short quiescence slices
        and closes the batch as soon as one slice passes with no new
        arrivals.  Concurrent clients send in waves (they all unblock
        when the previous batch's responses land), so arrivals cluster
        within a couple of milliseconds — waiting longer than the gap
        between them would add pure latency without growing the batch.

        Returns the batch to execute, or an empty list when the batcher
        closed with nothing left queued.
        """
        with self._cond:
            while not self._queue and not self._closed:
                self._cond.wait()
            if not self._queue:
                return []  # closed and drained
            batch = [self._queue.popleft()]
            n_designs = len(batch[0].sources)
            deadline = time.monotonic() + self.batch_window_s
            while n_designs < self.max_batch:
                if self._queue:
                    if n_designs + len(self._queue[0].sources) > self.max_batch:
                        break
                    nxt = self._queue.popleft()
                    batch.append(nxt)
                    n_designs += len(nxt.sources)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._cond.wait(min(remaining, max(self.quiescence_s, 1e-4)))
                if not self._queue:
                    break  # a quiescence slice passed with no arrivals
            return batch

    def _execute(self, batch: List[_Pending]) -> None:
        """Scan one collected batch and distribute slices back to requests.

        Requests whose deadline expired while they waited are shed first
        (finished with :data:`DEADLINE_ERROR`, no forward pass — the
        client stopped waiting, so scanning for it only delays everyone
        behind it).  The rest are grouped by requested confidence level;
        each group is one concatenated ``scan_fn`` call (one forward pass
        per group — in practice almost all traffic uses the default level
        and the whole batch is a single call).
        """
        live: List[_Pending] = []
        for pending in batch:
            if pending.deadline is not None and pending.deadline.expired():
                pending.error = DEADLINE_ERROR
                pending.finish()
            else:
                live.append(pending)
        if not live:
            return
        n_designs = sum(len(p.sources) for p in live)
        if self.metrics is not None:
            self.metrics.observe_batch(len(live), n_designs)
        groups: Dict[Optional[float], List[_Pending]] = {}
        for pending in live:
            groups.setdefault(pending.confidence, []).append(pending)
        for confidence, members in groups.items():
            concat: List[ScanSource] = []
            offsets: List[Tuple[_Pending, int, int]] = []
            for pending in members:
                start = len(concat)
                concat.extend(pending.sources)
                offsets.append((pending, start, len(concat)))
            try:
                report = self.scan_fn(concat, confidence)
            except Exception as exc:  # the whole group fails together
                message = f"{type(exc).__name__}: {exc}"
                for pending, _, _ in offsets:
                    pending.error = message
                    pending.finish()
                continue
            for pending, start, stop in offsets:
                records = report.records[start:stop]
                pending.result = BatchResult(
                    records=records,
                    n_cache_hits=sum(1 for r in records if r.cached),
                    n_errors=sum(1 for r in records if r.error is not None),
                    batch_designs=n_designs,
                    batch_requests=len(live),
                    confidence_level=report.confidence_level,
                    fingerprint=getattr(report, "fingerprint", ""),
                )
                pending.finish()

    def _run(self) -> None:
        """Worker loop: collect, execute, repeat until closed and drained."""
        while True:
            batch = self._collect_batch()
            if not batch:
                return
            self._execute(batch)
            with self._cond:
                self._in_flight -= len(batch)
            if self.after_batch is not None:
                try:
                    self.after_batch()
                except Exception:  # a failed flush must not kill the worker
                    logging.getLogger(__name__).exception(
                        "after_batch hook failed"
                    )
