"""Champion–challenger rollout: gate model promotion on live triage agreement.

Recalibrated detectors should reach production traffic the way any risky
change does: behind a gate.  :class:`RolloutController` implements the
serving layer's version of a regression workflow — the resident
**champion** keeps answering every request, while a freshly loaded
**challenger** *shadow-scans* a sampled slice of the same live traffic.
Shadow scans never touch responses; they only feed the agreement
ledger.  Once enough designs have been shadow-scanned, the controller
decides exactly once:

* triage-agreement rate ``>= promote_threshold`` → **promoted**: the
  serving layer swaps default routing to the challenger;
* below the threshold → **rejected**: shadow traffic stops, the champion
  keeps serving, and the disagreement evidence stays visible in
  ``GET /metrics`` for the operator who shipped the challenger.

Agreement is counted at the *triage verdict* level (``trojan_free`` /
``trojan_infected`` / uncertain / anomalous / error — the strings of
:attr:`repro.core.results.ScanRecord.verdict`), because that is what the
service's consumers act on: two models that disagree about a fourth
decimal of a p-value but triage every design identically are
operationally interchangeable.

The controller is a pure, thread-safe state machine — it never touches
models, batchers or sockets — so the promotion policy is testable
without a single HTTP request (see ``tests/test_serve_rollout.py``).
``POST /promote`` maps to :meth:`force_promote`, which bypasses the
evidence requirement but still records that it did.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

#: Default triage-agreement rate a challenger must clear to be promoted.
DEFAULT_PROMOTE_THRESHOLD = 0.98

#: Default number of shadow-scanned designs required before the
#: promote/reject decision is made.  Below this the agreement rate is too
#: noisy to act on (3 designs agreeing proves nothing).
DEFAULT_MIN_SHADOW_DESIGNS = 32

#: Default fraction of champion-routed designs that are shadow-scanned.
DEFAULT_SHADOW_SAMPLE = 1.0

#: The controller states.  ``shadowing`` is the only state that samples
#: traffic; both terminal states keep their evidence readable forever.
STATE_SHADOWING = "shadowing"
STATE_PROMOTED = "promoted"
STATE_REJECTED = "rejected"


class RolloutError(ValueError):
    """Raised for invalid rollout configuration or state transitions."""


class RolloutController:
    """Agreement ledger + one-shot promotion gate for one challenger.

    Parameters
    ----------
    champion / challenger:
        Model names as registered with the serving layer.  The controller
        only reports them; routing is the :class:`ScanService`'s job.
    promote_threshold:
        Minimum triage-agreement rate (fraction in ``[0, 1]``) for
        auto-promotion once ``min_shadow_designs`` have been observed.
    min_shadow_designs:
        Shadow-scanned designs required before the one-shot
        promote/reject decision is made.
    sample_rate:
        Fraction of champion-routed designs that are shadow-scanned, in
        ``(0, 1]``.  Sampling is deterministic (an error-diffusion
        accumulator, not a PRNG) so a given traffic sequence always
        shadows the same requests — reproducibility is worth more here
        than statistical independence.
    """

    def __init__(
        self,
        champion: str,
        challenger: str,
        promote_threshold: float = DEFAULT_PROMOTE_THRESHOLD,
        min_shadow_designs: int = DEFAULT_MIN_SHADOW_DESIGNS,
        sample_rate: float = DEFAULT_SHADOW_SAMPLE,
    ) -> None:
        if champion == challenger:
            raise RolloutError("champion and challenger must be different models")
        if not 0.0 <= promote_threshold <= 1.0:
            raise RolloutError("promote_threshold must be in [0, 1]")
        if min_shadow_designs < 1:
            raise RolloutError("min_shadow_designs must be at least 1")
        if not 0.0 < sample_rate <= 1.0:
            raise RolloutError("sample_rate must be in (0, 1]")
        self.champion = champion
        self.challenger = challenger
        self.promote_threshold = promote_threshold
        self.min_shadow_designs = min_shadow_designs
        self.sample_rate = sample_rate
        self._lock = threading.Lock()
        self._state = STATE_SHADOWING
        self._sample_accum = 0.0
        self._shadow_designs = 0
        self._agreements = 0
        self._disagreements: List[Dict[str, str]] = []
        self._decided_at: Optional[float] = None
        self._forced = False

    # -- sampling ------------------------------------------------------------
    def should_sample(self) -> bool:
        """Whether the next champion-routed request should be shadowed.

        Error-diffusion sampling: an accumulator gains ``sample_rate``
        per request and a shadow fires every time it crosses 1, so a
        rate of 0.25 shadows exactly every 4th request.  Returns
        ``False`` unconditionally once the controller left the
        ``shadowing`` state — terminal states stop consuming challenger
        compute.
        """
        with self._lock:
            if self._state != STATE_SHADOWING:
                return False
            self._sample_accum += self.sample_rate
            if self._sample_accum >= 1.0 - 1e-12:
                self._sample_accum -= 1.0
                return True
            return False

    # -- accounting ----------------------------------------------------------
    def observe(
        self,
        champion_verdicts: Sequence[str],
        challenger_verdicts: Sequence[str],
        names: Optional[Sequence[str]] = None,
    ) -> Optional[str]:
        """Fold one shadow-scanned batch into the agreement ledger.

        ``champion_verdicts`` and ``challenger_verdicts`` are the
        per-design triage verdict strings in the same design order.
        Returns the decision this observation triggered (``"promoted"``
        / ``"rejected"``) or ``None`` while still shadowing.  The
        decision is one-shot: observations after it are discarded (a
        late-arriving shadow batch must not flip a terminal state).
        """
        if len(champion_verdicts) != len(challenger_verdicts):
            raise RolloutError(
                "shadow comparison needs one challenger verdict per champion verdict"
            )
        with self._lock:
            if self._state != STATE_SHADOWING:
                return None
            for i, (ours, theirs) in enumerate(
                zip(champion_verdicts, challenger_verdicts)
            ):
                self._shadow_designs += 1
                if ours == theirs:
                    self._agreements += 1
                elif len(self._disagreements) < 16:
                    # A bounded sample of what disagreed — enough for an
                    # operator to reproduce, never an unbounded list.
                    self._disagreements.append(
                        {
                            "name": str(names[i]) if names else f"design_{i}",
                            "champion": ours,
                            "challenger": theirs,
                        }
                    )
            if self._shadow_designs < self.min_shadow_designs:
                return None
            # One-shot gate, decided the moment enough evidence exists.
            rate = self._agreements / self._shadow_designs
            self._state = (
                STATE_PROMOTED if rate >= self.promote_threshold else STATE_REJECTED
            )
            self._decided_at = time.time()
            return self._state

    def force_promote(self) -> None:
        """Promote now regardless of evidence (the ``POST /promote`` path).

        Valid from any state — an operator can overrule a rejection —
        and recorded as forced so the metrics never claim the agreement
        gate was cleared when it was not.
        """
        with self._lock:
            self._state = STATE_PROMOTED
            self._forced = True
            self._decided_at = time.time()

    # -- reading -------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state: ``shadowing``, ``promoted`` or ``rejected``."""
        with self._lock:
            return self._state

    def agreement_rate(self) -> Optional[float]:
        """Observed triage-agreement rate, ``None`` before any shadow scan."""
        with self._lock:
            if not self._shadow_designs:
                return None
            return self._agreements / self._shadow_designs

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready rollout status for ``GET /metrics`` / ``POST /promote``."""
        with self._lock:
            rate = (
                self._agreements / self._shadow_designs
                if self._shadow_designs
                else None
            )
            return {
                "champion": self.champion,
                "challenger": self.challenger,
                "state": self._state,
                "promote_threshold": self.promote_threshold,
                "min_shadow_designs": self.min_shadow_designs,
                "sample_rate": self.sample_rate,
                "shadow_designs": self._shadow_designs,
                "agreements": self._agreements,
                "agreement_rate": rate,
                "disagreements": list(self._disagreements),
                "decided_at": self._decided_at,
                "forced": self._forced,
            }
