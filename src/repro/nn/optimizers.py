"""First-order optimizers for the numpy neural-network substrate.

An optimizer is bound to a list of parameter arrays and the aligned list of
gradient arrays (as returned by ``Sequential.parameters()`` /
``Sequential.gradients()``) and updates the parameters *in place* on each
``step()`` call.  Updating in place is what lets the layers keep referencing
the same arrays.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np


class Optimizer:
    """Base class holding references to parameters and their gradients."""

    def __init__(self, learning_rate: float = 0.01, weight_decay: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self._params: List[np.ndarray] = []
        self._grads: List[np.ndarray] = []

    def bind(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        """Attach the optimizer to model parameters; called by the model."""
        if len(params) != len(grads):
            raise ValueError("params and grads must be aligned lists")
        self._params = params
        self._grads = grads
        self._on_bind()

    def _on_bind(self) -> None:
        """Hook for subclasses to allocate per-parameter state."""

    def _decayed(self, param: np.ndarray, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            return grad + self.weight_decay * param
        return grad

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for grad in self._grads:
            grad[...] = 0.0


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: List[np.ndarray] = []

    def _on_bind(self) -> None:
        self._velocity = [np.zeros_like(p) for p in self._params]

    def step(self) -> None:
        for param, grad, vel in zip(self._params, self._grads, self._velocity):
            g = self._decayed(param, grad)
            if self.momentum:
                vel *= self.momentum
                vel -= self.learning_rate * g
                param += vel
            else:
                param -= self.learning_rate * g


class RMSProp(Optimizer):
    """RMSProp with exponentially decayed squared-gradient accumulator."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        decay: float = 0.9,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.decay = decay
        self.eps = eps
        self._cache: List[np.ndarray] = []

    def _on_bind(self) -> None:
        self._cache = [np.zeros_like(p) for p in self._params]

    def step(self) -> None:
        for param, grad, cache in zip(self._params, self._grads, self._cache):
            g = self._decayed(param, grad)
            cache *= self.decay
            cache += (1.0 - self.decay) * g**2
            param -= self.learning_rate * g / (np.sqrt(cache) + self.eps)


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1/beta2 must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: List[np.ndarray] = []
        self._v: List[np.ndarray] = []
        self._t = 0

    def _on_bind(self) -> None:
        self._m = [np.zeros_like(p) for p in self._params]
        self._v = [np.zeros_like(p) for p in self._params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, grad, m, v in zip(self._params, self._grads, self._m, self._v):
            g = self._decayed(param, grad)
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g**2
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


_OPTIMIZERS = {
    "sgd": SGD,
    "rmsprop": RMSProp,
    "adam": Adam,
}


def get_optimizer(
    spec: Union[str, Optimizer], learning_rate: Optional[float] = None
) -> Optimizer:
    """Resolve an optimizer by name (optionally overriding the learning rate)."""
    if isinstance(spec, Optimizer):
        if learning_rate is not None:
            spec.learning_rate = learning_rate
        return spec
    try:
        cls = _OPTIMIZERS[spec]
    except KeyError as exc:
        known = ", ".join(sorted(_OPTIMIZERS))
        raise ValueError(f"Unknown optimizer {spec!r}; known: {known}") from exc
    if learning_rate is None:
        return cls()
    return cls(learning_rate=learning_rate)
