"""Pluggable compute backends for the numpy neural-network substrate.

The training stack in :mod:`repro.nn.layers` is deliberately golden: float64,
explicit caches for the hand-derived backward passes, one allocation per
intermediate.  Inference in the scan engine needs none of that — no gradients,
no caches, and the same batch shape over and over — so this module introduces a
*backend seam*: a registry of named compute backends that compile a fitted
:class:`repro.nn.model.Sequential` into an inference-only execution plan.

Three backends ship by default:

``numpy`` (the golden default)
    Delegates to ``Sequential.forward(training=False)`` — bit-identical to the
    training stack, float64, used for calibration and as the reference the
    other backends are equivalence-tested against.

``fused_f32``
    A float32 inference path that fuses conv im2col + GEMM + bias + activation
    into one step per layer, allocates **no** backward caches, reuses
    preallocated per-batch-shape scratch buffers across micro-batches, and
    tiles the im2col GEMM across threads once the matrix crosses
    :data:`GEMM_THREAD_THRESHOLD` (BLAS releases the GIL, so column tiles
    genuinely run in parallel).

``int8``
    Dynamic quantization on top of the fused path: per-output-channel weight
    scales are computed **once** at compile (or restored from the artifact
    directory's quantized-weight cache), activations are quantized per batch
    with a single per-tensor scale, and the int8×int8 products are accumulated
    via the float32 GEMM (the quantized values are exact small integers, far
    inside float32's 2**24 exact-integer range at these kernel sizes).

Backends are selected per engine — ``ScanEngine(..., backend=...)``, the CLI's
``--backend`` flag and the serve layer's ``--backend`` all resolve through
:func:`get_backend`.  Step timings are accumulated in the module-level
:data:`PROFILER` so ``scan --profile`` can report ``infer/prep``,
``infer/quantize``, ``infer/gemm`` and ``infer/activation`` per backend.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .activations import Identity, LeakyReLU, ReLU, Sigmoid, Tanh
from .layers import (
    AvgPool1d,
    AvgPool2d,
    BatchNorm1d,
    Conv1d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePool1d,
    Layer,
    MaxPool1d,
    MaxPool2d,
)
from .model import Sequential

#: Name of the golden reference backend (and the universal default).
DEFAULT_BACKEND = "numpy"

#: Minimum ``M * K * N`` product before the fused GEMM is worth tiling
#: across threads — below this the submit/join overhead beats the win.
GEMM_THREAD_THRESHOLD = 1 << 22

#: Minimum number of output columns per thread tile; tiles thinner than
#: this spend more time in scheduling than in BLAS.
GEMM_MIN_TILE_COLS = 2048

#: Upper bound on GEMM worker threads (beyond ~4 the shared memory bus,
#: not the cores, is the bottleneck for these matrix shapes).
MAX_GEMM_THREADS = 4


# ---------------------------------------------------------------------------
# Per-stage profiler (feeds `scan --profile`'s infer/* sub-stages)
# ---------------------------------------------------------------------------


class BackendProfiler:
    """Thread-safe accumulator of per-stage backend timings.

    Execution steps call :meth:`add` with one of the canonical stage names
    (``prep``, ``quantize``, ``gemm``, ``activation``, ``fallback``); the
    scan engine calls :meth:`reset` before inference and :meth:`snapshot`
    after, turning the totals into ``infer/<stage>`` profile entries.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: Dict[str, float] = {}

    def reset(self) -> None:
        """Zero every accumulated stage."""
        with self._lock:
            self._stages.clear()

    def add(self, stage: str, seconds: float) -> None:
        """Accumulate ``seconds`` against ``stage``."""
        with self._lock:
            self._stages[stage] = self._stages.get(stage, 0.0) + seconds

    def snapshot(self) -> Dict[str, float]:
        """A copy of the accumulated ``{stage: seconds}`` mapping."""
        with self._lock:
            return dict(self._stages)


#: Process-global profiler instance shared by every compiled plan.
PROFILER = BackendProfiler()


# ---------------------------------------------------------------------------
# Threaded / tiled GEMM
# ---------------------------------------------------------------------------

_GEMM_POOL: Optional[ThreadPoolExecutor] = None
_GEMM_POOL_LOCK = threading.Lock()


def _gemm_workers() -> int:
    """Worker-thread count for the tiled GEMM (1 disables tiling)."""
    return max(1, min(MAX_GEMM_THREADS, (os.cpu_count() or 1) - 1))


def _gemm_pool() -> ThreadPoolExecutor:
    """The lazily-created shared GEMM thread pool."""
    global _GEMM_POOL
    if _GEMM_POOL is None:
        with _GEMM_POOL_LOCK:
            if _GEMM_POOL is None:
                _GEMM_POOL = ThreadPoolExecutor(
                    max_workers=_gemm_workers(), thread_name_prefix="repro-gemm"
                )
    return _GEMM_POOL


def fused_gemm(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out[:] = a @ b``, column-tiled across threads above a size threshold.

    Small products (everything at the paper's batch/feature shapes) go
    straight to one ``np.matmul`` call; once ``M*K*N`` crosses
    :data:`GEMM_THREAD_THRESHOLD` *and* there are enough output columns for
    :data:`GEMM_MIN_TILE_COLS`-wide tiles, the columns of ``b``/``out`` are
    split across the shared thread pool — each tile is an independent BLAS
    call that releases the GIL, so the tiles genuinely overlap.
    """
    m, k = a.shape
    n_cols = b.shape[1]
    workers = _gemm_workers()
    if (
        workers <= 1
        or m * k * n_cols < GEMM_THREAD_THRESHOLD
        or n_cols < 2 * GEMM_MIN_TILE_COLS
    ):
        return np.matmul(a, b, out=out)
    n_tiles = min(workers, n_cols // GEMM_MIN_TILE_COLS)
    bounds = np.linspace(0, n_cols, n_tiles + 1).astype(int)
    futures = [
        _gemm_pool().submit(np.matmul, a, b[:, lo:hi], out[:, lo:hi])
        for lo, hi in zip(bounds[:-1], bounds[1:])
    ]
    for future in futures:
        future.result()
    return out


# ---------------------------------------------------------------------------
# Fused activation application (in place on the step's output buffer)
# ---------------------------------------------------------------------------

#: Activation layers the fused steps can fold into the preceding GEMM/affine.
_FUSABLE_ACTIVATIONS = (ReLU, LeakyReLU, Sigmoid, Tanh, Identity)


def _activation_spec(layer: Layer) -> Tuple[str, float]:
    """``(kind, alpha)`` spec for a fusable activation layer."""
    if isinstance(layer, ReLU):
        return "relu", 0.0
    if isinstance(layer, LeakyReLU):
        return "leaky_relu", float(layer.alpha)
    if isinstance(layer, Sigmoid):
        return "sigmoid", 0.0
    if isinstance(layer, Tanh):
        return "tanh", 0.0
    return "identity", 0.0


def _apply_activation(kind: str, alpha: float, out: np.ndarray) -> None:
    """Apply an activation in place on ``out`` (float32, no new buffers)."""
    if kind == "relu":
        np.maximum(out, 0.0, out=out)
    elif kind == "leaky_relu":
        negative = out < 0
        out[negative] *= alpha
    elif kind == "sigmoid":
        # Same two-branch stable form as repro.nn.activations.Sigmoid.
        positive = out >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-out[positive]))
        exp_x = np.exp(out[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
    elif kind == "tanh":
        np.tanh(out, out=out)
    # "identity": nothing to do.


# ---------------------------------------------------------------------------
# Execution plans and steps
# ---------------------------------------------------------------------------


class InferencePlan:
    """A compiled, inference-only executable form of a ``Sequential`` model.

    Plans are produced by :meth:`InferenceBackend.compile`.  ``forward``
    returns a view into the plan's reusable scratch buffers (valid until the
    next ``forward`` call); ``predict_proba`` copies, so it is always safe.
    """

    def __init__(self, backend: str, dtype: str) -> None:
        self.backend = backend
        self.dtype = dtype

    def forward(self, x: np.ndarray) -> np.ndarray:
        """One inference forward pass over a batch."""
        raise NotImplementedError

    def predict_proba(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Micro-batched forward pass mirroring ``Sequential.predict_proba``."""
        outputs: List[np.ndarray] = []
        for start in range(0, len(x), batch_size):
            outputs.append(np.array(self.forward(x[start : start + batch_size])))
        return np.concatenate(outputs, axis=0) if outputs else np.empty((0,))

    def export_state(self) -> Dict[str, np.ndarray]:
        """Precomputed arrays worth caching on disk (empty for most plans)."""
        return {}


class _GoldenPlan(InferencePlan):
    """The ``numpy`` backend's plan: defer to the golden training stack."""

    def __init__(self, model: Sequential) -> None:
        super().__init__(DEFAULT_BACKEND, "float64")
        self._model = model

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._model.forward(x, training=False)

    def predict_proba(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Bit-identical to ``Sequential.predict_proba``."""
        return self._model.predict_proba(x, batch_size=batch_size)


class _CompiledPlan(InferencePlan):
    """Step-list plan with per-batch-shape scratch buffers (fused backends)."""

    def __init__(self, backend: str, dtype: str, steps: List["_Step"]) -> None:
        super().__init__(backend, dtype)
        self.steps = steps
        self._scratch: Dict[Tuple, np.ndarray] = {}

    def scratch(self, key: Tuple, shape: Tuple[int, ...], zero: bool = False) -> np.ndarray:
        """A reusable float32 buffer for ``key``+``shape``.

        Buffers persist across ``forward`` calls, so a steady stream of
        same-shaped micro-batches allocates on the first batch only.  With
        ``zero=True`` the buffer is zero-filled **once** at creation — used
        for padding buffers whose border stays zero because later batches
        only overwrite the interior.
        """
        full_key = key + (shape,)
        buffer = self._scratch.get(full_key)
        if buffer is None:
            buffer = (np.zeros if zero else np.empty)(shape, dtype=np.float32)
            self._scratch[full_key] = buffer
        return buffer

    def forward(self, x: np.ndarray) -> np.ndarray:
        t0 = time.perf_counter()
        out = np.asarray(x, dtype=np.float32)
        PROFILER.add("prep", time.perf_counter() - t0)
        for step in self.steps:
            out = step.run(out, self)
        return out

    def export_state(self) -> Dict[str, np.ndarray]:
        """Collect every quantized step's cacheable arrays (int8 plans)."""
        state: Dict[str, np.ndarray] = {}
        for step in self.steps:
            exporter = getattr(step, "quant_state", None)
            if exporter is not None:
                state.update(exporter())
        return state


class _Step:
    """One fused execution step; ``run`` consumes/returns float32 arrays."""

    #: Whether a following activation layer may be folded into this step.
    fusable = False

    def __init__(self, idx: int, layer: Optional[Layer] = None) -> None:
        self.idx = idx
        self.act: Tuple[str, float] = ("identity", 0.0)

    def run(self, x: np.ndarray, plan: _CompiledPlan) -> np.ndarray:
        raise NotImplementedError

    def _activate(self, out: np.ndarray) -> None:
        kind, alpha = self.act
        if kind == "identity":
            return
        t0 = time.perf_counter()
        _apply_activation(kind, alpha, out)
        PROFILER.add("activation", time.perf_counter() - t0)


class _FusedConv1d(_Step):
    """im2col + GEMM + bias + activation for ``Conv1d`` in one step."""

    fusable = True

    def __init__(self, idx: int, layer: Conv1d) -> None:
        super().__init__(idx)
        self.in_channels = layer.in_channels
        self.out_channels = layer.out_channels
        self.kernel_size = layer.kernel_size
        self.stride = layer.stride
        self.padding = layer.padding
        self.w = np.ascontiguousarray(
            layer.weight.reshape(layer.out_channels, -1), dtype=np.float32
        )
        self.b = layer.bias.astype(np.float32)

    def _columns(self, x: np.ndarray, plan: _CompiledPlan) -> Tuple[np.ndarray, int, int]:
        """Padded im2col into scratch; returns ``(cols, n, out_len)``."""
        n, c, length = x.shape
        out_len = (length + 2 * self.padding - self.kernel_size) // self.stride + 1
        if self.padding:
            x_pad = plan.scratch(
                (self.idx, "pad"), (n, c, length + 2 * self.padding), zero=True
            )
            x_pad[:, :, self.padding : self.padding + length] = x
        else:
            x_pad = x
        windows = sliding_window_view(x_pad, self.kernel_size, axis=2)[
            :, :, :: self.stride, :
        ]
        cols = plan.scratch((self.idx, "cols"), (c * self.kernel_size, n * out_len))
        cols.reshape(c, self.kernel_size, n, out_len)[...] = windows.transpose(1, 3, 0, 2)
        return cols, n, out_len

    def run(self, x: np.ndarray, plan: _CompiledPlan) -> np.ndarray:
        t0 = time.perf_counter()
        cols, n, out_len = self._columns(x, plan)
        t1 = time.perf_counter()
        out = plan.scratch((self.idx, "out"), (self.out_channels, n * out_len))
        fused_gemm(self.w, cols, out)
        out += self.b[:, None]
        t2 = time.perf_counter()
        PROFILER.add("prep", t1 - t0)
        PROFILER.add("gemm", t2 - t1)
        self._activate(out)
        return out.reshape(self.out_channels, n, out_len).transpose(1, 0, 2)


class _FusedConv2d(_Step):
    """im2col + GEMM + bias + activation for ``Conv2d`` in one step."""

    fusable = True

    def __init__(self, idx: int, layer: Conv2d) -> None:
        super().__init__(idx)
        self.in_channels = layer.in_channels
        self.out_channels = layer.out_channels
        self.kernel_size = layer.kernel_size
        self.stride = layer.stride
        self.padding = layer.padding
        self.w = np.ascontiguousarray(
            layer.weight.reshape(layer.out_channels, -1), dtype=np.float32
        )
        self.b = layer.bias.astype(np.float32)

    def _columns(
        self, x: np.ndarray, plan: _CompiledPlan
    ) -> Tuple[np.ndarray, int, int, int]:
        """Padded im2col into scratch; returns ``(cols, n, out_h, out_w)``."""
        kh, kw = self.kernel_size
        sh, sw = self.stride
        ph, pw = self.padding
        n, c, h, w = x.shape
        out_h = (h + 2 * ph - kh) // sh + 1
        out_w = (w + 2 * pw - kw) // sw + 1
        if ph or pw:
            x_pad = plan.scratch(
                (self.idx, "pad"), (n, c, h + 2 * ph, w + 2 * pw), zero=True
            )
            x_pad[:, :, ph : ph + h, pw : pw + w] = x
        else:
            x_pad = x
        windows = sliding_window_view(x_pad, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
        cols = plan.scratch((self.idx, "cols"), (c * kh * kw, n * out_h * out_w))
        cols.reshape(c, kh, kw, n, out_h, out_w)[...] = windows.transpose(1, 4, 5, 0, 2, 3)
        return cols, n, out_h, out_w

    def run(self, x: np.ndarray, plan: _CompiledPlan) -> np.ndarray:
        t0 = time.perf_counter()
        cols, n, out_h, out_w = self._columns(x, plan)
        t1 = time.perf_counter()
        out = plan.scratch((self.idx, "out"), (self.out_channels, n * out_h * out_w))
        fused_gemm(self.w, cols, out)
        out += self.b[:, None]
        t2 = time.perf_counter()
        PROFILER.add("prep", t1 - t0)
        PROFILER.add("gemm", t2 - t1)
        self._activate(out)
        return out.reshape(self.out_channels, n, out_h, out_w).transpose(1, 0, 2, 3)


class _FusedDense(_Step):
    """GEMM + bias + activation for ``Dense`` in one step."""

    fusable = True

    def __init__(self, idx: int, layer: Dense) -> None:
        super().__init__(idx)
        self.out_features = layer.out_features
        self.w = np.ascontiguousarray(layer.weight, dtype=np.float32)
        self.b = layer.bias.astype(np.float32) if layer.use_bias else None

    def run(self, x: np.ndarray, plan: _CompiledPlan) -> np.ndarray:
        t0 = time.perf_counter()
        out = plan.scratch((self.idx, "out"), (x.shape[0], self.out_features))
        fused_gemm(x, self.w, out)
        if self.b is not None:
            out += self.b
        PROFILER.add("gemm", time.perf_counter() - t0)
        self._activate(out)
        return out


class _FusedBatchNorm1d(_Step):
    """Inference batch-norm folded to one affine transform (+ activation)."""

    fusable = True

    def __init__(self, idx: int, layer: BatchNorm1d) -> None:
        super().__init__(idx)
        inv_std = 1.0 / np.sqrt(layer.running_var + layer.eps)
        self.scale = (layer.gamma * inv_std).astype(np.float32)
        self.shift = (layer.beta - layer.running_mean * layer.gamma * inv_std).astype(
            np.float32
        )

    def run(self, x: np.ndarray, plan: _CompiledPlan) -> np.ndarray:
        t0 = time.perf_counter()
        out = plan.scratch((self.idx, "out"), x.shape)
        np.multiply(x, self.scale, out=out)
        out += self.shift
        PROFILER.add("gemm", time.perf_counter() - t0)
        self._activate(out)
        return out


class _FusedMaxPool1d(_Step):
    """1-D max pool without the training path's argmax bookkeeping."""

    def __init__(self, idx: int, layer: MaxPool1d) -> None:
        super().__init__(idx)
        self.pool_size = layer.pool_size
        self.stride = layer.stride

    def run(self, x: np.ndarray, plan: _CompiledPlan) -> np.ndarray:
        t0 = time.perf_counter()
        n, c, length = x.shape
        out_len = (length - self.pool_size) // self.stride + 1
        out = plan.scratch((self.idx, "out"), (n, c, out_len))
        # One strided elementwise pass per kernel tap beats a windowed
        # reduction here: the input is usually a non-contiguous view of the
        # preceding conv's output, which reduction kernels handle poorly.
        span = (out_len - 1) * self.stride + 1
        np.copyto(out, x[:, :, 0:span : self.stride])
        for k in range(1, self.pool_size):
            np.maximum(out, x[:, :, k : k + span : self.stride], out=out)
        PROFILER.add("prep", time.perf_counter() - t0)
        return out


class _FusedMaxPool2d(_Step):
    """2-D max pool without the training path's argmax bookkeeping."""

    def __init__(self, idx: int, layer: MaxPool2d) -> None:
        super().__init__(idx)
        self.pool_size = layer.pool_size
        self.stride = layer.stride

    def run(self, x: np.ndarray, plan: _CompiledPlan) -> np.ndarray:
        t0 = time.perf_counter()
        n, c, h, w = x.shape
        ph, pw = self.pool_size
        sh, sw = self.stride
        out_h = (h - ph) // sh + 1
        out_w = (w - pw) // sw + 1
        out = plan.scratch((self.idx, "out"), (n, c, out_h, out_w))
        # Per-tap elementwise passes (see _FusedMaxPool1d for why).
        span_h = (out_h - 1) * sh + 1
        span_w = (out_w - 1) * sw + 1
        np.copyto(out, x[:, :, 0:span_h:sh, 0:span_w:sw])
        for a in range(ph):
            for b in range(pw):
                if a == 0 and b == 0:
                    continue
                np.maximum(
                    out, x[:, :, a : a + span_h : sh, b : b + span_w : sw], out=out
                )
        PROFILER.add("prep", time.perf_counter() - t0)
        return out


class _FusedAvgPool1d(_Step):
    """1-D average pool into a reusable buffer."""

    def __init__(self, idx: int, layer: AvgPool1d) -> None:
        super().__init__(idx)
        self.pool_size = layer.pool_size
        self.stride = layer.stride

    def run(self, x: np.ndarray, plan: _CompiledPlan) -> np.ndarray:
        t0 = time.perf_counter()
        n, c, length = x.shape
        out_len = (length - self.pool_size) // self.stride + 1
        out = plan.scratch((self.idx, "out"), (n, c, out_len))
        span = (out_len - 1) * self.stride + 1
        np.copyto(out, x[:, :, 0:span : self.stride])
        for k in range(1, self.pool_size):
            out += x[:, :, k : k + span : self.stride]
        out *= np.float32(1.0 / self.pool_size)
        PROFILER.add("prep", time.perf_counter() - t0)
        return out


class _FusedAvgPool2d(_Step):
    """2-D average pool into a reusable buffer."""

    def __init__(self, idx: int, layer: AvgPool2d) -> None:
        super().__init__(idx)
        self.pool_size = layer.pool_size
        self.stride = layer.stride

    def run(self, x: np.ndarray, plan: _CompiledPlan) -> np.ndarray:
        t0 = time.perf_counter()
        n, c, h, w = x.shape
        ph, pw = self.pool_size
        sh, sw = self.stride
        out_h = (h - ph) // sh + 1
        out_w = (w - pw) // sw + 1
        out = plan.scratch((self.idx, "out"), (n, c, out_h, out_w))
        span_h = (out_h - 1) * sh + 1
        span_w = (out_w - 1) * sw + 1
        np.copyto(out, x[:, :, 0:span_h:sh, 0:span_w:sw])
        for a in range(ph):
            for b in range(pw):
                if a == 0 and b == 0:
                    continue
                out += x[:, :, a : a + span_h : sh, b : b + span_w : sw]
        out *= np.float32(1.0 / (ph * pw))
        PROFILER.add("prep", time.perf_counter() - t0)
        return out


class _FusedFlatten(_Step):
    """Flatten into a contiguous reusable buffer (handles strided inputs)."""

    def run(self, x: np.ndarray, plan: _CompiledPlan) -> np.ndarray:
        t0 = time.perf_counter()
        n = x.shape[0]
        flat = int(np.prod(x.shape[1:]))
        out = plan.scratch((self.idx, "out"), (n, flat))
        out.reshape(x.shape)[...] = x
        PROFILER.add("prep", time.perf_counter() - t0)
        return out


class _FusedGlobalAvgPool1d(_Step):
    """Global average over the length axis into a reusable buffer."""

    def run(self, x: np.ndarray, plan: _CompiledPlan) -> np.ndarray:
        t0 = time.perf_counter()
        out = plan.scratch((self.idx, "out"), x.shape[:2])
        np.mean(x, axis=2, out=out)
        PROFILER.add("prep", time.perf_counter() - t0)
        return out


class _ActivationStep(_Step):
    """A standalone (unfused) activation, applied on a private copy."""

    def __init__(self, idx: int, layer: Layer) -> None:
        super().__init__(idx)
        self.act = _activation_spec(layer)

    def run(self, x: np.ndarray, plan: _CompiledPlan) -> np.ndarray:
        out = plan.scratch((self.idx, "out"), x.shape)
        out[...] = x
        self._activate(out)
        return out


class _FallbackStep(_Step):
    """Escape hatch: run an unrecognised layer through its own ``forward``.

    Keeps the fused backends correct for any layer this module does not
    specialise (e.g. ``Softmax``); the layer sees float32 inputs, which the
    dtype policy accepts.
    """

    def __init__(self, idx: int, layer: Layer) -> None:
        super().__init__(idx)
        self.layer = layer

    def run(self, x: np.ndarray, plan: _CompiledPlan) -> np.ndarray:
        t0 = time.perf_counter()
        out = np.asarray(self.layer.forward(x, training=False), dtype=np.float32)
        PROFILER.add("fallback", time.perf_counter() - t0)
        return out


# ---------------------------------------------------------------------------
# Int8 dynamic-quantized steps
# ---------------------------------------------------------------------------


def _quantize_weights(w_mat: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-output-channel int8 quantization of a weight matrix.

    ``w_mat`` has one output channel per **row**; returns ``(w_q, scale)``
    with ``w_q`` int8 and ``scale`` float32 such that
    ``w_mat ≈ w_q * scale[:, None]``.  All-zero channels get scale 1 so the
    reconstruction stays exact.
    """
    scale = np.abs(w_mat).max(axis=1) / 127.0
    scale[scale == 0.0] = 1.0
    w_q = np.clip(np.rint(w_mat / scale[:, None]), -127, 127).astype(np.int8)
    return w_q, scale.astype(np.float32)


def _quantize_activations(
    values: np.ndarray, out: np.ndarray
) -> float:
    """Per-tensor dynamic int8 quantization of ``values`` into ``out``.

    ``out`` receives the quantized levels as exact small integers stored in
    float32 (so the product GEMM runs through BLAS); returns the scale.
    """
    s_x = float(np.abs(values).max()) / 127.0
    if s_x == 0.0:
        s_x = 1.0
    np.multiply(values, 1.0 / s_x, out=out)
    np.rint(out, out=out)
    return s_x


class _Int8Conv1d(_FusedConv1d):
    """Conv1d with int8 per-channel weights and per-batch activation scales."""

    def __init__(
        self,
        idx: int,
        layer: Conv1d,
        state: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        super().__init__(idx, layer)
        if state is not None and f"{idx}/w_q" in state:
            self.w_q = np.asarray(state[f"{idx}/w_q"], dtype=np.int8)
            self.scale = np.asarray(state[f"{idx}/scale"], dtype=np.float32)
        else:
            self.w_q, self.scale = _quantize_weights(
                layer.weight.reshape(layer.out_channels, -1)
            )
        self.w = self.w_q.astype(np.float32)

    def quant_state(self) -> Dict[str, np.ndarray]:
        """Arrays worth caching in the artifact dir (weights quantize once)."""
        return {f"{self.idx}/w_q": self.w_q, f"{self.idx}/scale": self.scale}

    def run(self, x: np.ndarray, plan: _CompiledPlan) -> np.ndarray:
        t0 = time.perf_counter()
        cols, n, out_len = self._columns(x, plan)
        t1 = time.perf_counter()
        quantized = plan.scratch((self.idx, "q"), cols.shape)
        s_x = _quantize_activations(cols, quantized)
        t2 = time.perf_counter()
        out = plan.scratch((self.idx, "out"), (self.out_channels, n * out_len))
        fused_gemm(self.w, quantized, out)
        out *= (self.scale * np.float32(s_x))[:, None]
        out += self.b[:, None]
        t3 = time.perf_counter()
        PROFILER.add("prep", t1 - t0)
        PROFILER.add("quantize", t2 - t1)
        PROFILER.add("gemm", t3 - t2)
        self._activate(out)
        return out.reshape(self.out_channels, n, out_len).transpose(1, 0, 2)


class _Int8Conv2d(_FusedConv2d):
    """Conv2d with int8 per-channel weights and per-batch activation scales."""

    def __init__(
        self,
        idx: int,
        layer: Conv2d,
        state: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        super().__init__(idx, layer)
        if state is not None and f"{idx}/w_q" in state:
            self.w_q = np.asarray(state[f"{idx}/w_q"], dtype=np.int8)
            self.scale = np.asarray(state[f"{idx}/scale"], dtype=np.float32)
        else:
            self.w_q, self.scale = _quantize_weights(
                layer.weight.reshape(layer.out_channels, -1)
            )
        self.w = self.w_q.astype(np.float32)

    def quant_state(self) -> Dict[str, np.ndarray]:
        """Arrays worth caching in the artifact dir (weights quantize once)."""
        return {f"{self.idx}/w_q": self.w_q, f"{self.idx}/scale": self.scale}

    def run(self, x: np.ndarray, plan: _CompiledPlan) -> np.ndarray:
        t0 = time.perf_counter()
        cols, n, out_h, out_w = self._columns(x, plan)
        t1 = time.perf_counter()
        quantized = plan.scratch((self.idx, "q"), cols.shape)
        s_x = _quantize_activations(cols, quantized)
        t2 = time.perf_counter()
        out = plan.scratch((self.idx, "out"), (self.out_channels, n * out_h * out_w))
        fused_gemm(self.w, quantized, out)
        out *= (self.scale * np.float32(s_x))[:, None]
        out += self.b[:, None]
        t3 = time.perf_counter()
        PROFILER.add("prep", t1 - t0)
        PROFILER.add("quantize", t2 - t1)
        PROFILER.add("gemm", t3 - t2)
        self._activate(out)
        return out.reshape(self.out_channels, n, out_h, out_w).transpose(1, 0, 2, 3)


class _Int8Dense(_FusedDense):
    """Dense with int8 per-output-channel weights, per-batch input scale."""

    def __init__(
        self,
        idx: int,
        layer: Dense,
        state: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        super().__init__(idx, layer)
        if state is not None and f"{idx}/w_q" in state:
            self.w_q = np.asarray(state[f"{idx}/w_q"], dtype=np.int8)
            self.scale = np.asarray(state[f"{idx}/scale"], dtype=np.float32)
        else:
            # Quantize per *output* channel: transpose to row-per-channel.
            w_q_t, self.scale = _quantize_weights(np.asarray(layer.weight).T)
            self.w_q = np.ascontiguousarray(w_q_t.T)
        self.w = self.w_q.astype(np.float32)

    def quant_state(self) -> Dict[str, np.ndarray]:
        """Arrays worth caching in the artifact dir (weights quantize once)."""
        return {f"{self.idx}/w_q": self.w_q, f"{self.idx}/scale": self.scale}

    def run(self, x: np.ndarray, plan: _CompiledPlan) -> np.ndarray:
        t0 = time.perf_counter()
        quantized = plan.scratch((self.idx, "q"), x.shape)
        s_x = _quantize_activations(x, quantized)
        t1 = time.perf_counter()
        out = plan.scratch((self.idx, "out"), (x.shape[0], self.out_features))
        fused_gemm(quantized, self.w, out)
        out *= self.scale * np.float32(s_x)
        if self.b is not None:
            out += self.b
        t2 = time.perf_counter()
        PROFILER.add("quantize", t1 - t0)
        PROFILER.add("gemm", t2 - t1)
        self._activate(out)
        return out


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class InferenceBackend:
    """A named compute strategy that compiles models into inference plans."""

    #: Registry name (also what ``--backend`` selects).
    name = "abstract"
    #: Dominant arithmetic dtype, reported by ``/metrics`` and profiles.
    dtype = "float64"

    def compile(
        self, model: Sequential, state: Optional[Dict[str, np.ndarray]] = None
    ) -> InferencePlan:
        """Compile ``model`` into an executable :class:`InferencePlan`.

        ``state`` optionally supplies precomputed arrays (e.g. cached int8
        weights); backends that do not use it must ignore it.
        """
        raise NotImplementedError


class NumpyBackend(InferenceBackend):
    """The golden float64 reference backend (no compilation at all)."""

    name = DEFAULT_BACKEND
    dtype = "float64"

    def compile(
        self, model: Sequential, state: Optional[Dict[str, np.ndarray]] = None
    ) -> InferencePlan:
        """Wrap the model's own forward pass — bit-identical by construction."""
        return _GoldenPlan(model)


class FusedF32Backend(InferenceBackend):
    """Fused float32 inference: no grads, fused steps, reusable scratch."""

    name = "fused_f32"
    dtype = "float32"

    #: Layer types compiled to fused steps (others go through the fallback).
    _STEP_TYPES = {
        Conv1d: _FusedConv1d,
        Conv2d: _FusedConv2d,
        Dense: _FusedDense,
        BatchNorm1d: _FusedBatchNorm1d,
        MaxPool1d: _FusedMaxPool1d,
        MaxPool2d: _FusedMaxPool2d,
        AvgPool1d: _FusedAvgPool1d,
        AvgPool2d: _FusedAvgPool2d,
        Flatten: _FusedFlatten,
        GlobalAveragePool1d: _FusedGlobalAvgPool1d,
    }

    def _gemm_step(
        self, idx: int, layer: Layer, state: Optional[Dict[str, np.ndarray]]
    ) -> Optional[_Step]:
        """Hook for subclasses to replace the GEMM-bearing steps."""
        step_cls = self._STEP_TYPES.get(type(layer))
        return step_cls(idx, layer) if step_cls is not None else None

    def compile(
        self, model: Sequential, state: Optional[Dict[str, np.ndarray]] = None
    ) -> InferencePlan:
        """Walk the layer list, fusing trailing activations into each step.

        Weights are snapshotted (cast to float32) at compile time; refitting
        the model requires recompiling the plan (the classifier seam in
        :mod:`repro.core.classifiers` invalidates plans on ``fit``).
        """
        steps: List[_Step] = []
        layers = model.layers
        i = 0
        while i < len(layers):
            layer = layers[i]
            if isinstance(layer, Dropout):
                i += 1  # inference no-op: drop the layer entirely
                continue
            step = self._gemm_step(i, layer, state)
            if step is None:
                if isinstance(layer, _FUSABLE_ACTIVATIONS):
                    step = _ActivationStep(i, layer)
                else:
                    step = _FallbackStep(i, layer)
            if (
                step.fusable
                and i + 1 < len(layers)
                and isinstance(layers[i + 1], _FUSABLE_ACTIVATIONS)
            ):
                step.act = _activation_spec(layers[i + 1])
                i += 1
            steps.append(step)
            i += 1
        return _CompiledPlan(self.name, self.dtype, steps)


class Int8Backend(FusedF32Backend):
    """Dynamic int8 quantization of the GEMM layers on the fused path."""

    name = "int8"
    dtype = "int8"

    _QUANT_TYPES = {Conv1d: _Int8Conv1d, Conv2d: _Int8Conv2d, Dense: _Int8Dense}

    def _gemm_step(
        self, idx: int, layer: Layer, state: Optional[Dict[str, np.ndarray]]
    ) -> Optional[_Step]:
        """Quantized steps for the GEMM layers, fused f32 for the rest."""
        quant_cls = self._QUANT_TYPES.get(type(layer))
        if quant_cls is not None:
            return quant_cls(idx, layer, state)
        return super()._gemm_step(idx, layer, state)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_BACKENDS: Dict[str, Callable[[], InferenceBackend]] = {}


def register_backend(name: str, factory: Callable[[], InferenceBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _BACKENDS[name] = factory


def available_backends() -> List[str]:
    """Sorted names of every registered backend."""
    return sorted(_BACKENDS)


def get_backend(name: str) -> InferenceBackend:
    """Instantiate the backend registered under ``name``.

    Raises ``ValueError`` (listing the known names) for unknown backends —
    the CLI turns that into a usage error (exit status 2).
    """
    try:
        factory = _BACKENDS[name]
    except KeyError:
        known = ", ".join(available_backends())
        raise ValueError(f"unknown compute backend {name!r}; known backends: {known}")
    return factory()


register_backend(NumpyBackend.name, NumpyBackend)
register_backend(FusedF32Backend.name, FusedF32Backend)
register_backend(Int8Backend.name, Int8Backend)
