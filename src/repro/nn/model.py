"""Sequential model and training loop for the numpy neural-network substrate.

The :class:`Sequential` container chains layers, wires their parameters to an
optimizer, and provides the familiar ``fit`` / ``predict_proba`` / ``predict``
workflow.  It is intentionally framework-agnostic so the same model type can
serve the per-modality CNN classifiers, the GAN generator/discriminator and
the baseline MLP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .data import iterate_minibatches
from .dtype import as_float
from .layers import Layer
from .losses import Loss, get_loss
from .optimizers import Optimizer, get_optimizer


@dataclass
class TrainingHistory:
    """Per-epoch metrics recorded by :meth:`Sequential.fit`."""

    loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)

    @property
    def n_epochs(self) -> int:
        return len(self.loss)

    def as_dict(self) -> Dict[str, List[float]]:
        return {"loss": list(self.loss), "val_loss": list(self.val_loss)}


class Sequential:
    """A plain stack of layers trained with mini-batch gradient descent.

    Parameters
    ----------
    layers:
        Ordered list of :class:`repro.nn.layers.Layer` instances.
    loss:
        Loss name or instance (see :mod:`repro.nn.losses`).
    optimizer:
        Optimizer name or instance (see :mod:`repro.nn.optimizers`).
    learning_rate:
        Convenience override applied when the optimizer is given by name.
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        loss: Union[str, Loss] = "bce",
        optimizer: Union[str, Optimizer] = "adam",
        learning_rate: Optional[float] = None,
    ) -> None:
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers: List[Layer] = list(layers)
        self.loss_fn: Loss = get_loss(loss)
        self.optimizer: Optimizer = get_optimizer(optimizer, learning_rate)
        self.optimizer.bind(self.parameters(), self.gradients())
        self.history = TrainingHistory()

    # -- parameter plumbing ----------------------------------------------
    def parameters(self) -> List[np.ndarray]:
        params: List[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def gradients(self) -> List[np.ndarray]:
        grads: List[np.ndarray] = []
        for layer in self.layers:
            grads.extend(layer.gradients())
        return grads

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    @property
    def n_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    # -- forward / backward ----------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = as_float(x)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # -- training ----------------------------------------------------------
    def train_on_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """Single optimization step on one mini-batch; returns the batch loss."""
        self.zero_grad()
        pred = self.forward(x, training=True)
        loss_value = self.loss_fn.loss(pred, y)
        grad = self.loss_fn.gradient(pred, y)
        self.backward(grad)
        self.optimizer.step()
        return float(loss_value)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 10,
        batch_size: int = 32,
        validation_data: Optional[tuple] = None,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
        early_stopping_patience: Optional[int] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes over ``(x, y)``.

        ``early_stopping_patience`` stops training when the validation loss
        (or the training loss if no validation data is given) has not
        improved for that many consecutive epochs.
        """
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        x = as_float(x)
        y = as_float(y)
        rng = rng or np.random.default_rng()
        best_metric = np.inf
        epochs_without_improvement = 0
        for epoch in range(epochs):
            batch_losses = []
            for xb, yb in iterate_minibatches(x, y, batch_size, shuffle=shuffle, rng=rng):
                batch_losses.append(self.train_on_batch(xb, yb))
            epoch_loss = float(np.mean(batch_losses)) if batch_losses else float("nan")
            self.history.loss.append(epoch_loss)
            monitored = epoch_loss
            if validation_data is not None:
                val_x, val_y = validation_data
                val_pred = self.forward(as_float(val_x), training=False)
                val_loss = self.loss_fn.loss(val_pred, as_float(val_y))
                self.history.val_loss.append(float(val_loss))
                monitored = float(val_loss)
            if verbose:  # pragma: no cover - logging only
                print(f"epoch {epoch + 1}/{epochs} loss={epoch_loss:.4f}")
            if early_stopping_patience is not None:
                if monitored < best_metric - 1e-9:
                    best_metric = monitored
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    if epochs_without_improvement >= early_stopping_patience:
                        break
        return self.history

    # -- inference ----------------------------------------------------------
    def predict_proba(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Forward pass in inference mode, batched to bound memory."""
        x = as_float(x)
        outputs = []
        for start in range(0, len(x), batch_size):
            outputs.append(self.forward(x[start : start + batch_size], training=False))
        return np.concatenate(outputs, axis=0) if outputs else np.empty((0,))

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard predictions.

        For a single-output (binary, sigmoid) head the ``threshold`` is
        applied; for a multi-output head the argmax is taken.
        """
        proba = self.predict_proba(x)
        if proba.ndim == 1 or proba.shape[1] == 1:
            return (proba.reshape(-1) >= threshold).astype(int)
        return proba.argmax(axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Sequential([{inner}], n_parameters={self.n_parameters})"
