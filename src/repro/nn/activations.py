"""Activation layers for the numpy neural-network substrate.

Activations are stateless layers (no trainable parameters); they cache the
values required by their analytic derivative during ``forward`` and apply it
in ``backward``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .dtype import as_float
from .layers import Layer


class ReLU(Layer):
    """Rectified linear unit ``max(0, x)``."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class LeakyReLU(Layer):
    """Leaky ReLU with negative slope ``alpha`` (default 0.01)."""

    def __init__(self, alpha: float = 0.01) -> None:
        super().__init__()
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.alpha * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * np.where(self._mask, 1.0, self.alpha)


class Sigmoid(Layer):
    """Logistic sigmoid, numerically stabilised for large magnitudes."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_float(x)
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        exp_x = np.exp(x[~pos])
        out[~pos] = exp_x / (1.0 + exp_x)
        self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


class Tanh(Layer):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output**2)


class Softmax(Layer):
    """Row-wise softmax over the last axis.

    The backward pass implements the full Jacobian-vector product; when the
    softmax is paired with a cross-entropy loss the combined gradient in
    :mod:`repro.nn.losses` is preferred for numerical stability, but this
    layer remains usable stand-alone.
    """

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        self._output = exp / exp.sum(axis=-1, keepdims=True)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        s = self._output
        dot = (grad_output * s).sum(axis=-1, keepdims=True)
        return s * (grad_output - dot)


class Identity(Layer):
    """Pass-through layer, useful as a configurable no-op."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


_ACTIVATIONS = {
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "softmax": Softmax,
    "identity": Identity,
    "linear": Identity,
}


def get_activation(name: str) -> Layer:
    """Instantiate an activation layer by name."""
    try:
        return _ACTIVATIONS[name]()
    except KeyError as exc:
        known = ", ".join(sorted(_ACTIVATIONS))
        raise ValueError(f"Unknown activation {name!r}; known: {known}") from exc
