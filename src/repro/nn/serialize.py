"""Serialization for the numpy model stack.

Historically this module only persisted :class:`repro.nn.model.Sequential`
weights (the "state dict" pattern: numerical parameters in an ``.npz``
archive, architecture reconstructed from code).  The scan-engine artifact
store (:mod:`repro.engine.artifacts`) extends the same pattern up the stack,
so this module now also flattens and restores:

* :class:`repro.features.scaling.StandardScaler` statistics;
* a full :class:`repro.core.classifiers.CNNModalityClassifier` (scaler +
  network weights);
* the calibration state of a
  :class:`repro.conformal.icp.InductiveConformalClassifier`, including its
  pre-sorted calibration-score caches so a restored predictor emits
  bit-identical p-values.

Every helper works on plain ``Dict[str, np.ndarray]`` mappings with
``<prefix><name>`` keys, so the artifact store can pack one model's many
components into a single ``.npz`` archive.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

import numpy as np

from .model import Sequential

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..conformal.icp import InductiveConformalClassifier
    from ..core.classifiers import CNNModalityClassifier
    from ..features.scaling import StandardScaler


def state_dict(model: Sequential) -> Dict[str, np.ndarray]:
    """Return a copy of all parameters keyed by ``param_<index>``."""
    return {f"param_{i}": p.copy() for i, p in enumerate(model.parameters())}


def load_state_dict(model: Sequential, state: Dict[str, np.ndarray]) -> None:
    """Copy parameters from ``state`` into ``model`` in place.

    Raises ``ValueError`` on any count or shape mismatch so silently loading
    weights into the wrong architecture is impossible.
    """
    params = model.parameters()
    expected_keys = [f"param_{i}" for i in range(len(params))]
    missing = [k for k in expected_keys if k not in state]
    if missing:
        raise ValueError(f"state dict is missing parameters: {missing}")
    extra = [k for k in state if k not in expected_keys]
    if extra:
        raise ValueError(f"state dict has unexpected parameters: {extra}")
    for key, param in zip(expected_keys, params):
        value = np.asarray(state[key])
        if value.shape != param.shape:
            raise ValueError(
                f"shape mismatch for {key}: expected {param.shape}, got {value.shape}"
            )
        param[...] = value


def save_weights(model: Sequential, path: Union[str, Path]) -> Path:
    """Persist model parameters to ``path`` (``.npz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **state_dict(model))
    # ``np.savez`` appends .npz when absent; normalise the returned path.
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def load_weights(model: Sequential, path: Union[str, Path]) -> None:
    """Load parameters saved by :func:`save_weights` into ``model``."""
    with np.load(Path(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    load_state_dict(model, state)


# ---------------------------------------------------------------------------
# Prefix plumbing shared by the flatten/restore helpers below
# ---------------------------------------------------------------------------


def _subset(arrays: Dict[str, np.ndarray], prefix: str) -> Dict[str, np.ndarray]:
    """All entries under ``prefix``, with the prefix stripped from the keys."""
    return {
        key[len(prefix) :]: value
        for key, value in arrays.items()
        if key.startswith(prefix)
    }


# ---------------------------------------------------------------------------
# StandardScaler
# ---------------------------------------------------------------------------


def scaler_state_dict(
    scaler: "StandardScaler", prefix: str = ""
) -> Dict[str, np.ndarray]:
    """Flatten a fitted scaler's statistics into ``<prefix>mean`` / ``<prefix>scale``."""
    if scaler.mean_ is None or scaler.scale_ is None:
        raise ValueError("cannot serialize an unfitted StandardScaler")
    return {f"{prefix}mean": scaler.mean_.copy(), f"{prefix}scale": scaler.scale_.copy()}


def restore_scaler(arrays: Dict[str, np.ndarray], prefix: str = "") -> "StandardScaler":
    """Rebuild a fitted :class:`StandardScaler` from :func:`scaler_state_dict`."""
    from ..features.scaling import StandardScaler

    scaler = StandardScaler()
    scaler.mean_ = np.asarray(arrays[f"{prefix}mean"], dtype=np.float64)
    scaler.scale_ = np.asarray(arrays[f"{prefix}scale"], dtype=np.float64)
    return scaler


# ---------------------------------------------------------------------------
# CNNModalityClassifier (scaler + Sequential weights)
# ---------------------------------------------------------------------------


def classifier_state_dict(
    classifier: "CNNModalityClassifier", prefix: str = ""
) -> Dict[str, np.ndarray]:
    """Flatten one modality classifier: scaler stats + network parameters."""
    arrays = scaler_state_dict(classifier._scaler, prefix=f"{prefix}scaler/")
    for key, value in state_dict(classifier._model).items():
        arrays[f"{prefix}model/{key}"] = value
    return arrays


def restore_classifier(
    n_features: int,
    config: Any,
    arrays: Dict[str, np.ndarray],
    prefix: str = "",
) -> "CNNModalityClassifier":
    """Rebuild a fitted :class:`CNNModalityClassifier`.

    The architecture is reconstructed from ``(n_features, config)`` — the
    code-is-architecture rule of :func:`load_state_dict` — then the persisted
    scaler statistics and network weights are copied in.  Shape or count
    mismatches raise ``ValueError``.
    """
    from ..core.classifiers import CNNModalityClassifier

    classifier = CNNModalityClassifier(n_features, config)
    classifier._scaler = restore_scaler(arrays, prefix=f"{prefix}scaler/")
    load_state_dict(classifier._model, _subset(arrays, f"{prefix}model/"))
    return classifier


# ---------------------------------------------------------------------------
# InductiveConformalClassifier calibration state
# ---------------------------------------------------------------------------


def icp_state_dict(
    icp: "InductiveConformalClassifier", prefix: str = ""
) -> Dict[str, np.ndarray]:
    """Flatten a calibrated conformal predictor's arrays under ``prefix``.

    The JSON-serialisable settings (mondrian flag, nonconformity name, class
    count) are packed alongside the arrays as a structured scalar so one
    mapping carries the complete state; :func:`icp_settings` extracts them.
    """
    state = icp.calibration_state()
    settings = state.pop("settings")
    arrays = {f"{prefix}{key}": value for key, value in state.items()}
    arrays[f"{prefix}settings"] = np.array(
        [
            int(settings["mondrian"]),
            int(settings["smoothing"]),
            int(settings["n_classes"]),
        ],
        dtype=np.int64,
    )
    arrays[f"{prefix}nonconformity"] = np.array(settings["nonconformity"])
    return arrays


def restore_icp(
    arrays: Dict[str, np.ndarray],
    prefix: str = "",
    rng: Optional[np.random.Generator] = None,
) -> "InductiveConformalClassifier":
    """Rebuild a calibrated predictor from :func:`icp_state_dict` output."""
    from ..conformal.icp import InductiveConformalClassifier

    flat = _subset(arrays, prefix)
    packed = np.asarray(flat.pop("settings"))
    settings = {
        "mondrian": bool(packed[0]),
        "smoothing": bool(packed[1]),
        "n_classes": int(packed[2]),
        "nonconformity": str(np.asarray(flat.pop("nonconformity"))),
    }
    state: Dict[str, Any] = dict(flat)
    state["settings"] = settings
    return InductiveConformalClassifier.from_calibration_state(state, rng=rng)
