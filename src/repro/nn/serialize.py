"""Weight serialization for :class:`repro.nn.model.Sequential`.

Only the numerical parameters are stored (as an ``.npz`` archive); the
architecture itself is code, so loading requires constructing an identically
shaped model first.  This mirrors the common "state dict" pattern.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from .model import Sequential


def state_dict(model: Sequential) -> Dict[str, np.ndarray]:
    """Return a copy of all parameters keyed by ``param_<index>``."""
    return {f"param_{i}": p.copy() for i, p in enumerate(model.parameters())}


def load_state_dict(model: Sequential, state: Dict[str, np.ndarray]) -> None:
    """Copy parameters from ``state`` into ``model`` in place.

    Raises ``ValueError`` on any count or shape mismatch so silently loading
    weights into the wrong architecture is impossible.
    """
    params = model.parameters()
    expected_keys = [f"param_{i}" for i in range(len(params))]
    missing = [k for k in expected_keys if k not in state]
    if missing:
        raise ValueError(f"state dict is missing parameters: {missing}")
    extra = [k for k in state if k not in expected_keys]
    if extra:
        raise ValueError(f"state dict has unexpected parameters: {extra}")
    for key, param in zip(expected_keys, params):
        value = np.asarray(state[key])
        if value.shape != param.shape:
            raise ValueError(
                f"shape mismatch for {key}: expected {param.shape}, got {value.shape}"
            )
        param[...] = value


def save_weights(model: Sequential, path: Union[str, Path]) -> Path:
    """Persist model parameters to ``path`` (``.npz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **state_dict(model))
    # ``np.savez`` appends .npz when absent; normalise the returned path.
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def load_weights(model: Sequential, path: Union[str, Path]) -> None:
    """Load parameters saved by :func:`save_weights` into ``model``."""
    with np.load(Path(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    load_state_dict(model, state)
