"""A small, self-contained neural-network library on top of numpy.

This package replaces the deep-learning framework the NOODLE paper uses
(PyTorch) with an explicit, gradient-checked implementation: layers with
hand-derived backward passes, standard losses and optimizers, and a
``Sequential`` training container.  Everything the rest of ``repro`` trains —
per-modality CNN classifiers, the GAN generator/discriminator, the MLP
baseline — is built from these pieces.
"""

from .backend import (
    DEFAULT_BACKEND,
    InferenceBackend,
    InferencePlan,
    available_backends,
    fused_gemm,
    get_backend,
    register_backend,
)
from .activations import (
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    get_activation,
)
from .data import iterate_minibatches, one_hot, stratified_indices, train_test_split
from .dtype import as_float, default_dtype, get_default_dtype, set_default_dtype
from .initializers import available_initializers, get_initializer
from .layers import (
    AvgPool1d,
    AvgPool2d,
    BatchNorm1d,
    Conv1d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePool1d,
    Layer,
    MaxPool1d,
    MaxPool2d,
)
from .losses import (
    BinaryCrossEntropy,
    BinaryCrossEntropyWithLogits,
    CategoricalCrossEntropy,
    HingeLoss,
    Loss,
    MeanSquaredError,
    SoftmaxCrossEntropy,
    get_loss,
)
from .model import Sequential, TrainingHistory
from .optimizers import SGD, Adam, Optimizer, RMSProp, get_optimizer
from .serialize import load_state_dict, load_weights, save_weights, state_dict

__all__ = [
    "Adam",
    "AvgPool1d",
    "AvgPool2d",
    "BatchNorm1d",
    "BinaryCrossEntropy",
    "BinaryCrossEntropyWithLogits",
    "CategoricalCrossEntropy",
    "Conv1d",
    "Conv2d",
    "DEFAULT_BACKEND",
    "Dense",
    "Dropout",
    "Flatten",
    "GlobalAveragePool1d",
    "HingeLoss",
    "Identity",
    "InferenceBackend",
    "InferencePlan",
    "Layer",
    "LeakyReLU",
    "Loss",
    "MaxPool1d",
    "MaxPool2d",
    "MeanSquaredError",
    "Optimizer",
    "ReLU",
    "RMSProp",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Softmax",
    "SoftmaxCrossEntropy",
    "Tanh",
    "TrainingHistory",
    "as_float",
    "available_backends",
    "available_initializers",
    "default_dtype",
    "fused_gemm",
    "get_activation",
    "get_backend",
    "get_default_dtype",
    "set_default_dtype",
    "get_initializer",
    "get_loss",
    "get_optimizer",
    "iterate_minibatches",
    "load_state_dict",
    "load_weights",
    "one_hot",
    "register_backend",
    "save_weights",
    "state_dict",
    "stratified_indices",
    "train_test_split",
]
