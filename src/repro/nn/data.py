"""Small data utilities shared by the model trainer and experiments.

These replace the handful of helpers a deep-learning framework would
normally provide: mini-batch iteration, train/validation splitting,
one-hot encoding and stratified shuffling.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np


def one_hot(labels: Sequence[int], n_classes: Optional[int] = None) -> np.ndarray:
    """Encode integer labels as one-hot rows.

    ``n_classes`` defaults to ``max(labels) + 1``; passing it explicitly is
    recommended whenever a split might not contain every class.
    """
    labels = np.asarray(labels, dtype=int)
    if labels.ndim != 1:
        raise ValueError("labels must be a 1-D sequence of class indices")
    if n_classes is None:
        n_classes = int(labels.max()) + 1 if labels.size else 0
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ValueError("labels out of range for the requested number of classes")
    encoded = np.zeros((labels.shape[0], n_classes))
    if labels.size:
        encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def iterate_minibatches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    shuffle: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(x_batch, y_batch)`` pairs covering the whole dataset once."""
    if len(x) != len(y):
        raise ValueError("x and y must have the same number of samples")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    indices = np.arange(len(x))
    if shuffle:
        rng = rng or np.random.default_rng()
        rng.shuffle(indices)
    for start in range(0, len(x), batch_size):
        batch = indices[start : start + batch_size]
        yield x[batch], y[batch]


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.25,
    stratify: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split arrays into train/test partitions.

    With ``stratify=True`` (the default) the class proportions of ``y`` are
    preserved in both partitions, which matters for the heavily imbalanced
    Trojan datasets this library targets.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if len(x) != len(y):
        raise ValueError("x and y must have the same number of samples")
    rng = rng or np.random.default_rng()
    y = np.asarray(y)
    if stratify:
        train_idx: list = []
        test_idx: list = []
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            rng.shuffle(members)
            n_test = max(1, int(round(len(members) * test_fraction)))
            if n_test >= len(members):
                n_test = len(members) - 1 if len(members) > 1 else 0
            test_idx.extend(members[:n_test])
            train_idx.extend(members[n_test:])
        train_idx = np.asarray(sorted(train_idx))
        test_idx = np.asarray(sorted(test_idx))
    else:
        indices = rng.permutation(len(x))
        n_test = max(1, int(round(len(x) * test_fraction)))
        test_idx = np.sort(indices[:n_test])
        train_idx = np.sort(indices[n_test:])
    return x[train_idx], x[test_idx], y[train_idx], y[test_idx]


def stratified_indices(
    y: np.ndarray, n_splits: int, rng: Optional[np.random.Generator] = None
) -> list:
    """Return ``n_splits`` disjoint index folds with per-class balance.

    Used by the cross-validation style scenario sweeps in
    :mod:`repro.experiments.fig2`.
    """
    if n_splits < 2:
        raise ValueError("n_splits must be at least 2")
    rng = rng or np.random.default_rng()
    y = np.asarray(y)
    folds: list = [[] for _ in range(n_splits)]
    for label in np.unique(y):
        members = np.flatnonzero(y == label)
        rng.shuffle(members)
        for i, idx in enumerate(members):
            folds[i % n_splits].append(int(idx))
    return [np.asarray(sorted(fold)) for fold in folds]
