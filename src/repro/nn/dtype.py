"""Floating-point dtype policy for the numpy neural-network substrate.

Historically every ``Layer.forward`` began with ``np.asarray(x,
dtype=np.float64)``, which silently promoted ``float32`` inputs to
``float64`` (an allocation plus a full conversion pass on the hot path) and
pinned the whole stack to double precision.  This module centralises the
policy instead:

* The *default* float dtype is ``float64`` so every existing caller keeps
  bit-identical numerics.
* ``set_default_dtype(np.float32)`` (or the :func:`default_dtype` context
  manager) opts a process — or a block — into single precision.  Layers
  constructed while the policy is ``float32`` cast their parameters once at
  init time, so forward/backward then run end-to-end in ``float32``.
* :func:`as_float` is the conversion used at every layer boundary: an input
  that already holds the policy dtype passes through untouched (no copy, no
  cast); anything else (ints, lists, off-policy floats) is converted to the
  policy dtype exactly once.  Under the default ``float64`` policy this is
  bit-identical to the historical ``np.asarray(x, dtype=np.float64)`` —
  ``float32`` inputs still upcast — minus the redundant conversion pass for
  already-``float64`` arrays.

The policy is deliberately process-global rather than per-layer: mixing
precisions inside one model buys nothing on CPU and makes the gradient
checks ambiguous.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Union

import numpy as np

DTypeLike = Union[str, type, np.dtype]

#: Float dtypes that may pass through :func:`as_float` unconverted.
ACCEPTED_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_default_dtype = np.dtype(np.float64)


def _validate(dtype: DTypeLike) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in ACCEPTED_FLOAT_DTYPES:
        accepted = ", ".join(str(d) for d in ACCEPTED_FLOAT_DTYPES)
        raise ValueError(f"dtype policy accepts only {accepted}, got {resolved}")
    return resolved


def get_default_dtype() -> np.dtype:
    """The dtype new parameters are created with and inputs are converted to."""
    return _default_dtype


def set_default_dtype(dtype: DTypeLike) -> np.dtype:
    """Set the process-wide default float dtype (``float32`` or ``float64``)."""
    global _default_dtype
    _default_dtype = _validate(dtype)
    return _default_dtype


@contextmanager
def default_dtype(dtype: DTypeLike) -> Iterator[np.dtype]:
    """Temporarily switch the default float dtype within a ``with`` block."""
    previous = _default_dtype
    try:
        yield set_default_dtype(dtype)
    finally:
        set_default_dtype(previous)


def as_float(x: np.ndarray, dtype: DTypeLike = None) -> np.ndarray:
    """Convert ``x`` to the policy float dtype without churn.

    If ``x`` is already an ndarray of the policy dtype (``dtype``, or the
    process default when omitted), it is returned as-is — zero copies, zero
    casts — so repeated layer boundaries cost nothing.  Anything else is
    converted in a single pass, so the compute dtype is always exactly the
    policy dtype and existing ``float64`` pipelines stay bit-identical.
    """
    target = _validate(dtype) if dtype is not None else _default_dtype
    arr = np.asarray(x)
    if arr.dtype == target:
        return arr
    return arr.astype(target)


def as_param(x: np.ndarray) -> np.ndarray:
    """Cast a freshly-initialised parameter to the policy dtype (no copy if
    it already conforms)."""
    return np.asarray(x).astype(_default_dtype, copy=False)
