"""Loss functions for the numpy neural-network substrate.

Each loss exposes ``loss(pred, target) -> float`` and
``gradient(pred, target) -> array`` where the gradient is dL/d(pred) averaged
over the batch, matching the convention used by
:class:`repro.nn.model.Sequential`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .dtype import as_float

_EPS = 1e-12


def _clip_probabilities(p: np.ndarray) -> np.ndarray:
    return np.clip(p, _EPS, 1.0 - _EPS)


class Loss:
    """Base class for losses."""

    def loss(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> float:
        return self.loss(pred, target)


class MeanSquaredError(Loss):
    """Mean squared error, averaged over every element."""

    def loss(self, pred: np.ndarray, target: np.ndarray) -> float:
        diff = np.asarray(pred, dtype=np.float64) - np.asarray(target, dtype=np.float64)
        return float(np.mean(diff**2))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        pred = as_float(pred)
        target = as_float(target)
        return 2.0 * (pred - target) / pred.size


class BinaryCrossEntropy(Loss):
    """Binary cross-entropy on probabilities (i.e. after a sigmoid).

    ``pred`` may be shaped ``(N,)`` or ``(N, 1)``; ``target`` holds 0/1
    labels (floats accepted).
    """

    def loss(self, pred: np.ndarray, target: np.ndarray) -> float:
        p = _clip_probabilities(np.asarray(pred, dtype=np.float64).reshape(-1))
        t = np.asarray(target, dtype=np.float64).reshape(-1)
        if p.shape != t.shape:
            raise ValueError(f"shape mismatch: pred {p.shape} vs target {t.shape}")
        return float(-np.mean(t * np.log(p) + (1.0 - t) * np.log(1.0 - p)))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        original_shape = np.asarray(pred).shape
        p = _clip_probabilities(as_float(pred).reshape(-1))
        t = as_float(target).reshape(-1)
        grad = (p - t) / (p * (1.0 - p)) / p.size
        return grad.reshape(original_shape)


class BinaryCrossEntropyWithLogits(Loss):
    """Numerically stable binary cross-entropy on raw logits."""

    def loss(self, pred: np.ndarray, target: np.ndarray) -> float:
        z = np.asarray(pred, dtype=np.float64).reshape(-1)
        t = np.asarray(target, dtype=np.float64).reshape(-1)
        if z.shape != t.shape:
            raise ValueError(f"shape mismatch: pred {z.shape} vs target {t.shape}")
        # log(1 + exp(-|z|)) + max(z, 0) - z*t is the standard stable form.
        return float(np.mean(np.maximum(z, 0.0) - z * t + np.log1p(np.exp(-np.abs(z)))))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        original_shape = np.asarray(pred).shape
        z = as_float(pred).reshape(-1)
        t = as_float(target).reshape(-1)
        sigma = np.where(z >= 0, 1.0 / (1.0 + np.exp(-z)), np.exp(z) / (1.0 + np.exp(z)))
        return ((sigma - t) / z.size).reshape(original_shape)


class CategoricalCrossEntropy(Loss):
    """Cross-entropy on class probabilities with one-hot or index targets."""

    @staticmethod
    def _one_hot(target: np.ndarray, n_classes: int, dtype=np.float64) -> np.ndarray:
        target = np.asarray(target)
        if target.ndim == 2:
            return target.astype(dtype, copy=False)
        one_hot = np.zeros((target.shape[0], n_classes), dtype=dtype)
        one_hot[np.arange(target.shape[0]), target.astype(int)] = 1.0
        return one_hot

    def loss(self, pred: np.ndarray, target: np.ndarray) -> float:
        p = _clip_probabilities(np.asarray(pred, dtype=np.float64))
        t = self._one_hot(target, p.shape[1])
        return float(-np.mean(np.sum(t * np.log(p), axis=1)))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        p = _clip_probabilities(as_float(pred))
        t = self._one_hot(target, p.shape[1], dtype=p.dtype)
        return -(t / p) / p.shape[0]


class SoftmaxCrossEntropy(Loss):
    """Fused softmax + cross-entropy on raw logits (stable combined gradient)."""

    @staticmethod
    def _softmax(z: np.ndarray) -> np.ndarray:
        shifted = z - z.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def loss(self, pred: np.ndarray, target: np.ndarray) -> float:
        z = np.asarray(pred, dtype=np.float64)
        probs = _clip_probabilities(self._softmax(z))
        t = CategoricalCrossEntropy._one_hot(target, z.shape[1])
        return float(-np.mean(np.sum(t * np.log(probs), axis=1)))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        z = as_float(pred)
        probs = self._softmax(z)
        t = CategoricalCrossEntropy._one_hot(target, z.shape[1], dtype=z.dtype)
        return (probs - t) / z.shape[0]


class HingeLoss(Loss):
    """Binary hinge loss on raw scores with targets in {0, 1} or {-1, +1}."""

    @staticmethod
    def _to_signed(target: np.ndarray) -> np.ndarray:
        t = np.asarray(target, dtype=np.float64).reshape(-1)
        if set(np.unique(t)) <= {0.0, 1.0}:
            return 2.0 * t - 1.0
        return t

    def loss(self, pred: np.ndarray, target: np.ndarray) -> float:
        scores = np.asarray(pred, dtype=np.float64).reshape(-1)
        t = self._to_signed(target)
        return float(np.mean(np.maximum(0.0, 1.0 - t * scores)))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        original_shape = np.asarray(pred).shape
        scores = as_float(pred).reshape(-1)
        t = self._to_signed(target).astype(scores.dtype, copy=False)
        grad = np.where(t * scores < 1.0, -t, 0.0) / scores.size
        return grad.reshape(original_shape)


_LOSSES = {
    "mse": MeanSquaredError,
    "bce": BinaryCrossEntropy,
    "bce_logits": BinaryCrossEntropyWithLogits,
    "categorical_crossentropy": CategoricalCrossEntropy,
    "softmax_crossentropy": SoftmaxCrossEntropy,
    "hinge": HingeLoss,
}


def get_loss(spec: Union[str, Loss]) -> Loss:
    """Resolve a loss by name or pass through an instance."""
    if isinstance(spec, Loss):
        return spec
    try:
        return _LOSSES[spec]()
    except KeyError as exc:
        known = ", ".join(sorted(_LOSSES))
        raise ValueError(f"Unknown loss {spec!r}; known: {known}") from exc
