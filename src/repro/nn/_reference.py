"""Golden loop implementations of the convolution/pooling kernels.

These are the seed repository's original per-output-position Python loops,
extracted verbatim as pure functions.  They are *not* used on any hot path:
the layers in :mod:`repro.nn.layers` run the vectorized
``sliding_window_view`` kernels instead.  The loops survive here for two
reasons:

* the equivalence tests (``tests/test_nn_vectorized_equivalence.py``) check
  the optimized kernels against them to 1e-8 across a grid of
  stride/padding/kernel shapes, and
* the perf harness (``benchmarks/perf/bench_nn.py``) times optimized vs
  golden to record the speedup evidence in ``BENCH_nn.json``.

Every function takes explicit arrays/hyper-parameters so no layer state is
needed to drive them.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def im2col_1d_loop(
    x_pad: np.ndarray, kernel_size: int, stride: int, out_len: int
) -> np.ndarray:
    """Per-position im2col for ``(N, C, L_pad)`` inputs -> ``(N, out_len, C*K)``."""
    n, c, _ = x_pad.shape
    cols = np.empty((n, out_len, c * kernel_size), dtype=x_pad.dtype)
    for i in range(out_len):
        start = i * stride
        cols[:, i, :] = x_pad[:, :, start : start + kernel_size].reshape(n, -1)
    return cols


def col2im_1d_loop(
    grad_cols: np.ndarray,
    in_channels: int,
    kernel_size: int,
    stride: int,
    padded_len: int,
) -> np.ndarray:
    """Per-position col2im scatter: ``(N, out_len, C*K)`` -> ``(N, C, L_pad)``."""
    n, out_len, _ = grad_cols.shape
    grad_x_pad = np.zeros((n, in_channels, padded_len), dtype=grad_cols.dtype)
    for i in range(out_len):
        start = i * stride
        grad_x_pad[:, :, start : start + kernel_size] += grad_cols[:, i, :].reshape(
            n, in_channels, kernel_size
        )
    return grad_x_pad


def im2col_2d_loop(
    x_pad: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    out_size: Tuple[int, int],
) -> np.ndarray:
    """Per-position im2col for ``(N, C, H_pad, W_pad)`` -> ``(N, oH*oW, C*kh*kw)``."""
    n, c, _, _ = x_pad.shape
    kh, kw = kernel_size
    sh, sw = stride
    out_h, out_w = out_size
    cols = np.empty((n, out_h * out_w, c * kh * kw), dtype=x_pad.dtype)
    idx = 0
    for i in range(out_h):
        for j in range(out_w):
            patch = x_pad[:, :, i * sh : i * sh + kh, j * sw : j * sw + kw]
            cols[:, idx, :] = patch.reshape(n, -1)
            idx += 1
    return cols


def col2im_2d_loop(
    grad_cols: np.ndarray,
    in_channels: int,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    out_size: Tuple[int, int],
    padded_shape: Tuple[int, int],
) -> np.ndarray:
    """Per-position col2im scatter: ``(N, oH*oW, C*kh*kw)`` -> ``(N, C, H_pad, W_pad)``."""
    n = grad_cols.shape[0]
    kh, kw = kernel_size
    sh, sw = stride
    out_h, out_w = out_size
    grad_x_pad = np.zeros((n, in_channels) + padded_shape, dtype=grad_cols.dtype)
    idx = 0
    for i in range(out_h):
        for j in range(out_w):
            grad_x_pad[:, :, i * sh : i * sh + kh, j * sw : j * sw + kw] += grad_cols[
                :, idx, :
            ].reshape(n, in_channels, kh, kw)
            idx += 1
    return grad_x_pad


def pool_windows_1d_loop(x: np.ndarray, pool_size: int, stride: int) -> np.ndarray:
    """Per-position window gather for ``(N, C, L)`` -> ``(N, C, out_len, P)``."""
    n, c, length = x.shape
    out_len = (length - pool_size) // stride + 1
    windows = np.empty((n, c, out_len, pool_size), dtype=x.dtype)
    for i in range(out_len):
        start = i * stride
        windows[:, :, i, :] = x[:, :, start : start + pool_size]
    return windows


def pool_windows_2d_loop(
    x: np.ndarray, pool_size: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    """Per-position window gather for ``(N, C, H, W)`` -> ``(N, C, oH, oW, ph*pw)``."""
    n, c, h, w = x.shape
    ph, pw = pool_size
    sh, sw = stride
    out_h = (h - ph) // sh + 1
    out_w = (w - pw) // sw + 1
    windows = np.empty((n, c, out_h, out_w, ph * pw), dtype=x.dtype)
    for i in range(out_h):
        for j in range(out_w):
            patch = x[:, :, i * sh : i * sh + ph, j * sw : j * sw + pw]
            windows[:, :, i, j, :] = patch.reshape(n, c, -1)
    return windows
