"""Weight initialization schemes for the numpy neural-network substrate.

Every initializer is a callable ``init(shape, rng) -> np.ndarray`` so layers
can accept either a name (string) or a custom callable.  The schemes follow
the standard definitions:

* ``zeros`` / ``ones``     -- constant tensors, mostly for biases.
* ``uniform`` / ``normal`` -- scaled random tensors.
* ``xavier_uniform`` / ``xavier_normal`` (Glorot) -- variance preserved for
  tanh/sigmoid style activations.
* ``he_uniform`` / ``he_normal`` (Kaiming) -- variance preserved for ReLU
  style activations.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, Union

import numpy as np

Initializer = Callable[[Sequence[int], np.random.Generator], np.ndarray]


def _fan_in_fan_out(shape: Sequence[int]) -> tuple:
    """Compute fan-in / fan-out for dense and convolutional weight shapes.

    Dense weights are ``(in, out)``.  Convolutional kernels are
    ``(filters, channels, *kernel_dims)`` so the receptive field size
    multiplies into both fans.
    """
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = 1
    for dim in shape[2:]:
        receptive *= dim
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def zeros(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)


def uniform(shape: Sequence[int], rng: np.random.Generator, scale: float = 0.05) -> np.ndarray:
    return rng.uniform(-scale, scale, size=shape)


def normal(shape: Sequence[int], rng: np.random.Generator, scale: float = 0.05) -> np.ndarray:
    return rng.normal(0.0, scale, size=shape)


def xavier_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fan_in_fan_out(shape)
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fan_in_fan_out(shape)
    limit = math.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fan_in_fan_out(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


_REGISTRY = {
    "zeros": zeros,
    "ones": ones,
    "uniform": uniform,
    "normal": normal,
    "xavier_uniform": xavier_uniform,
    "xavier_normal": xavier_normal,
    "glorot_uniform": xavier_uniform,
    "glorot_normal": xavier_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
    "kaiming_uniform": he_uniform,
    "kaiming_normal": he_normal,
}


def get_initializer(spec: Union[str, Initializer]) -> Initializer:
    """Resolve an initializer name or pass through a callable.

    Raises ``ValueError`` for unknown names so configuration typos fail
    loudly instead of silently producing untrained-looking models.
    """
    if callable(spec):
        return spec
    try:
        return _REGISTRY[spec]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"Unknown initializer {spec!r}; known: {known}") from exc


def available_initializers() -> list:
    """Names accepted by :func:`get_initializer`."""
    return sorted(_REGISTRY)
