"""Layers for the numpy neural-network substrate.

Every layer implements the minimal interface used by
:class:`repro.nn.model.Sequential`:

* ``forward(x, training)`` -- compute the output and cache whatever the
  backward pass needs.
* ``backward(grad_output)`` -- given dL/d(output), accumulate parameter
  gradients and return dL/d(input).
* ``parameters()`` / ``gradients()`` -- aligned lists of arrays, consumed by
  the optimizers in :mod:`repro.nn.optimizers`.

The layers are deliberately simple and explicit (no autograd engine); each
backward pass is hand-derived and verified with finite-difference tests in
``tests/test_nn_gradients.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .initializers import get_initializer


class Layer:
    """Base class for all layers.

    Subclasses that own trainable parameters must populate ``self._params``
    and ``self._grads`` with aligned lists of arrays.  Stateless layers can
    rely on the default empty lists.
    """

    def __init__(self) -> None:
        self._params: List[np.ndarray] = []
        self._grads: List[np.ndarray] = []

    # -- interface -------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[np.ndarray]:
        return self._params

    def gradients(self) -> List[np.ndarray]:
        return self._grads

    def zero_grad(self) -> None:
        for grad in self._grads:
            grad[...] = 0.0

    # -- introspection ---------------------------------------------------
    @property
    def n_parameters(self) -> int:
        return int(sum(p.size for p in self._params))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    weight_init, bias_init:
        Initializer names or callables (see :mod:`repro.nn.initializers`).
    use_bias:
        If ``False`` the layer is a pure linear map.
    rng:
        Random generator used for initialization; pass one for
        reproducibility.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight_init: str = "he_normal",
        bias_init: str = "zeros",
        use_bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense layer dimensions must be positive")
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.use_bias = use_bias
        self.weight = get_initializer(weight_init)((in_features, out_features), rng)
        self.grad_weight = np.zeros_like(self.weight)
        self._params = [self.weight]
        self._grads = [self.grad_weight]
        if use_bias:
            self.bias = get_initializer(bias_init)((out_features,), rng)
            self.grad_bias = np.zeros_like(self.bias)
            self._params.append(self.bias)
            self._grads.append(self.grad_bias)
        self._cache_input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected input of shape (N, {self.in_features}), got {x.shape}"
            )
        self._cache_input = x
        out = x @ self.weight
        if self.use_bias:
            out = out + self.bias
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError("backward called before forward")
        x = self._cache_input
        self.grad_weight += x.T @ grad_output
        if self.use_bias:
            self.grad_bias += grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense({self.in_features}, {self.out_features}, bias={self.use_bias})"


class Flatten(Layer):
    """Flatten all non-batch dimensions into one."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._input_shape)


class Dropout(Layer):
    """Inverted dropout: active only when ``training=True``."""

    def __init__(self, rate: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("Dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng or np.random.default_rng()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class BatchNorm1d(Layer):
    """Batch normalization over the feature axis of ``(N, F)`` inputs.

    Keeps running estimates of mean/variance for inference, exactly as in
    Ioffe & Szegedy (2015).
    """

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = np.ones(num_features)
        self.beta = np.zeros(num_features)
        self.grad_gamma = np.zeros_like(self.gamma)
        self.grad_beta = np.zeros_like(self.beta)
        self._params = [self.gamma, self.beta]
        self._grads = [self.grad_gamma, self.grad_beta]
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expected input (N, {self.num_features}), got {x.shape}"
            )
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        x_hat = (x - mean) / np.sqrt(var + self.eps)
        self._cache = (x_hat, var, x - mean) if training else None
        return self.gamma * x_hat + self.beta

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward requires a preceding training-mode forward")
        x_hat, var, x_centered = self._cache
        n = grad_output.shape[0]
        inv_std = 1.0 / np.sqrt(var + self.eps)
        self.grad_gamma += (grad_output * x_hat).sum(axis=0)
        self.grad_beta += grad_output.sum(axis=0)
        dx_hat = grad_output * self.gamma
        # Standard batch-norm backward (sum over batch of the coupled terms).
        grad_input = (
            inv_std / n
        ) * (n * dx_hat - dx_hat.sum(axis=0) - x_hat * (dx_hat * x_hat).sum(axis=0))
        return grad_input


def _as_pair(value: Union[int, Sequence[int]]) -> Tuple[int, int]:
    if isinstance(value, int):
        return value, value
    pair = tuple(value)
    if len(pair) != 2:
        raise ValueError(f"Expected an int or pair, got {value!r}")
    return int(pair[0]), int(pair[1])


class Conv1d(Layer):
    """1-D convolution over inputs of shape ``(N, C, L)``.

    Implemented with an explicit sliding-window expansion (im2col) so both
    forward and backward are expressed as dense matrix products.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        weight_init: str = "he_normal",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError("kernel_size/stride must be positive, padding non-negative")
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = get_initializer(weight_init)(
            (out_channels, in_channels, kernel_size), rng
        )
        self.bias = np.zeros(out_channels)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._params = [self.weight, self.bias]
        self._grads = [self.grad_weight, self.grad_bias]
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def _output_length(self, length: int) -> int:
        return (length + 2 * self.padding - self.kernel_size) // self.stride + 1

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv1d expected input (N, {self.in_channels}, L), got {x.shape}"
            )
        n, _, length = x.shape
        out_len = self._output_length(length)
        if out_len <= 0:
            raise ValueError("Conv1d output length would be non-positive")
        if self.padding:
            x_pad = np.pad(x, ((0, 0), (0, 0), (self.padding, self.padding)))
        else:
            x_pad = x
        # columns: (N, out_len, C * K)
        cols = np.empty((n, out_len, self.in_channels * self.kernel_size))
        for i in range(out_len):
            start = i * self.stride
            cols[:, i, :] = x_pad[:, :, start : start + self.kernel_size].reshape(n, -1)
        w_mat = self.weight.reshape(self.out_channels, -1)
        out = cols @ w_mat.T + self.bias  # (N, out_len, F)
        self._cache = (cols, x.shape)
        return out.transpose(0, 2, 1)  # (N, F, out_len)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, input_shape = self._cache
        n, _, length = input_shape
        out_len = grad_output.shape[2]
        grad = grad_output.transpose(0, 2, 1)  # (N, out_len, F)
        w_mat = self.weight.reshape(self.out_channels, -1)
        self.grad_bias += grad.sum(axis=(0, 1))
        self.grad_weight += (
            grad.reshape(-1, self.out_channels).T @ cols.reshape(-1, cols.shape[2])
        ).reshape(self.weight.shape)
        grad_cols = grad @ w_mat  # (N, out_len, C*K)
        padded_len = length + 2 * self.padding
        grad_x_pad = np.zeros((n, self.in_channels, padded_len))
        for i in range(out_len):
            start = i * self.stride
            grad_x_pad[:, :, start : start + self.kernel_size] += grad_cols[:, i, :].reshape(
                n, self.in_channels, self.kernel_size
            )
        if self.padding:
            return grad_x_pad[:, :, self.padding : -self.padding]
        return grad_x_pad


class Conv2d(Layer):
    """2-D convolution over inputs of shape ``(N, C, H, W)`` using im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: Union[int, Sequence[int]],
        stride: Union[int, Sequence[int]] = 1,
        padding: Union[int, Sequence[int]] = 0,
        weight_init: str = "he_normal",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _as_pair(kernel_size)
        self.stride = _as_pair(stride)
        self.padding = _as_pair(padding)
        if min(self.kernel_size) <= 0 or min(self.stride) <= 0 or min(self.padding) < 0:
            raise ValueError("invalid kernel/stride/padding for Conv2d")
        kh, kw = self.kernel_size
        self.weight = get_initializer(weight_init)((out_channels, in_channels, kh, kw), rng)
        self.bias = np.zeros(out_channels)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._params = [self.weight, self.bias]
        self._grads = [self.grad_weight, self.grad_bias]
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...], Tuple[int, int]]] = None

    def _output_size(self, h: int, w: int) -> Tuple[int, int]:
        kh, kw = self.kernel_size
        sh, sw = self.stride
        ph, pw = self.padding
        out_h = (h + 2 * ph - kh) // sh + 1
        out_w = (w + 2 * pw - kw) // sw + 1
        return out_h, out_w

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected input (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n, _, h, w = x.shape
        out_h, out_w = self._output_size(h, w)
        if out_h <= 0 or out_w <= 0:
            raise ValueError("Conv2d output size would be non-positive")
        ph, pw = self.padding
        kh, kw = self.kernel_size
        sh, sw = self.stride
        x_pad = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if (ph or pw) else x
        cols = np.empty((n, out_h * out_w, self.in_channels * kh * kw))
        idx = 0
        for i in range(out_h):
            for j in range(out_w):
                patch = x_pad[:, :, i * sh : i * sh + kh, j * sw : j * sw + kw]
                cols[:, idx, :] = patch.reshape(n, -1)
                idx += 1
        w_mat = self.weight.reshape(self.out_channels, -1)
        out = cols @ w_mat.T + self.bias  # (N, out_h*out_w, F)
        self._cache = (cols, x.shape, (out_h, out_w))
        return out.transpose(0, 2, 1).reshape(n, self.out_channels, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, input_shape, (out_h, out_w) = self._cache
        n, _, h, w = input_shape
        ph, pw = self.padding
        kh, kw = self.kernel_size
        sh, sw = self.stride
        grad = grad_output.reshape(n, self.out_channels, out_h * out_w).transpose(0, 2, 1)
        w_mat = self.weight.reshape(self.out_channels, -1)
        self.grad_bias += grad.sum(axis=(0, 1))
        self.grad_weight += (
            grad.reshape(-1, self.out_channels).T @ cols.reshape(-1, cols.shape[2])
        ).reshape(self.weight.shape)
        grad_cols = grad @ w_mat  # (N, out_h*out_w, C*kh*kw)
        grad_x_pad = np.zeros((n, self.in_channels, h + 2 * ph, w + 2 * pw))
        idx = 0
        for i in range(out_h):
            for j in range(out_w):
                grad_x_pad[:, :, i * sh : i * sh + kh, j * sw : j * sw + kw] += grad_cols[
                    :, idx, :
                ].reshape(n, self.in_channels, kh, kw)
                idx += 1
        if ph or pw:
            return grad_x_pad[:, :, ph : ph + h, pw : pw + w]
        return grad_x_pad


class MaxPool1d(Layer):
    """1-D max pooling over ``(N, C, L)`` inputs."""

    def __init__(self, pool_size: int = 2, stride: Optional[int] = None) -> None:
        super().__init__()
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self.stride = stride or pool_size
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...]]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, length = x.shape
        out_len = (length - self.pool_size) // self.stride + 1
        if out_len <= 0:
            raise ValueError("MaxPool1d output length would be non-positive")
        windows = np.empty((n, c, out_len, self.pool_size))
        for i in range(out_len):
            start = i * self.stride
            windows[:, :, i, :] = x[:, :, start : start + self.pool_size]
        argmax = windows.argmax(axis=3)
        self._cache = (argmax, x.shape)
        return windows.max(axis=3)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        argmax, input_shape = self._cache
        n, c, length = input_shape
        out_len = grad_output.shape[2]
        grad_input = np.zeros(input_shape)
        n_idx = np.arange(n)[:, None, None]
        c_idx = np.arange(c)[None, :, None]
        pos = np.arange(out_len)[None, None, :] * self.stride + argmax
        np.add.at(grad_input, (n_idx, c_idx, pos), grad_output)
        return grad_input


class MaxPool2d(Layer):
    """2-D max pooling over ``(N, C, H, W)`` inputs."""

    def __init__(
        self,
        pool_size: Union[int, Sequence[int]] = 2,
        stride: Optional[Union[int, Sequence[int]]] = None,
    ) -> None:
        super().__init__()
        self.pool_size = _as_pair(pool_size)
        self.stride = _as_pair(stride) if stride is not None else self.pool_size
        if min(self.pool_size) <= 0 or min(self.stride) <= 0:
            raise ValueError("pool_size and stride must be positive")
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...], Tuple[int, int]]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        ph, pw = self.pool_size
        sh, sw = self.stride
        out_h = (h - ph) // sh + 1
        out_w = (w - pw) // sw + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError("MaxPool2d output size would be non-positive")
        windows = np.empty((n, c, out_h, out_w, ph * pw))
        for i in range(out_h):
            for j in range(out_w):
                patch = x[:, :, i * sh : i * sh + ph, j * sw : j * sw + pw]
                windows[:, :, i, j, :] = patch.reshape(n, c, -1)
        argmax = windows.argmax(axis=4)
        self._cache = (argmax, x.shape, (out_h, out_w))
        return windows.max(axis=4)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        argmax, input_shape, (out_h, out_w) = self._cache
        n, c, h, w = input_shape
        ph, pw = self.pool_size
        sh, sw = self.stride
        grad_input = np.zeros(input_shape)
        n_idx = np.arange(n)[:, None, None, None]
        c_idx = np.arange(c)[None, :, None, None]
        row_in_window = argmax // pw
        col_in_window = argmax % pw
        rows = np.arange(out_h)[None, None, :, None] * sh + row_in_window
        cols = np.arange(out_w)[None, None, None, :] * sw + col_in_window
        np.add.at(grad_input, (n_idx, c_idx, rows, cols), grad_output)
        return grad_input


class GlobalAveragePool1d(Layer):
    """Average over the length dimension of ``(N, C, L)`` inputs -> ``(N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._length: Optional[int] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._length = x.shape[2]
        return x.mean(axis=2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._length is None:
            raise RuntimeError("backward called before forward")
        return np.repeat(grad_output[:, :, None], self._length, axis=2) / self._length
