"""Layers for the numpy neural-network substrate.

Every layer implements the minimal interface used by
:class:`repro.nn.model.Sequential`:

* ``forward(x, training)`` -- compute the output and cache whatever the
  backward pass needs.
* ``backward(grad_output)`` -- given dL/d(output), accumulate parameter
  gradients and return dL/d(input).
* ``parameters()`` / ``gradients()`` -- aligned lists of arrays, consumed by
  the optimizers in :mod:`repro.nn.optimizers`.

The layers are deliberately simple and explicit (no autograd engine); each
backward pass is hand-derived and verified with finite-difference tests in
``tests/test_nn_gradients.py``.

The convolution and pooling kernels are fully vectorized: im2col is built
from a single ``numpy.lib.stride_tricks.sliding_window_view`` (no Python
loop over output positions) and col2im scatters gradients with one strided
add per *kernel tap* (at most ``kh * kw`` iterations, independent of the
spatial output size).  The original loop implementations survive in
:mod:`repro.nn._reference` as the golden baseline for the equivalence tests
and the perf harness (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .dtype import as_float, as_param, get_default_dtype
from .initializers import get_initializer


# ---------------------------------------------------------------------------
# Vectorized im2col / col2im kernels (shared by conv and pooling layers)
# ---------------------------------------------------------------------------


def _im2col_1d(
    x_pad: np.ndarray, kernel_size: int, stride: int, out_len: int
) -> np.ndarray:
    """``(N, C, L_pad)`` -> ``(C*K, N*out_len)`` with one strided gather.

    The column matrix is laid out kernel-major so the convolution becomes a
    single contiguous 2-D GEMM (``weight_matrix @ cols``) instead of a
    batched 3-D matmul, which BLAS handles far better at these shapes.
    """
    n, c = x_pad.shape[:2]
    windows = sliding_window_view(x_pad, kernel_size, axis=2)[:, :, ::stride, :]
    return np.ascontiguousarray(windows.transpose(1, 3, 0, 2)).reshape(
        c * kernel_size, n * out_len
    )


def _col2im_1d(
    grad_cols: np.ndarray,
    n: int,
    in_channels: int,
    kernel_size: int,
    stride: int,
    out_len: int,
    padded_len: int,
) -> np.ndarray:
    """``(C*K, N*out_len)`` -> ``(N, C, L_pad)`` via one strided add per tap."""
    g = grad_cols.reshape(in_channels, kernel_size, n, out_len)
    grad_x_pad = np.zeros((n, in_channels, padded_len), dtype=grad_cols.dtype)
    transposed = grad_x_pad.transpose(1, 0, 2)
    span = (out_len - 1) * stride + 1
    for k in range(kernel_size):
        transposed[:, :, k : k + span : stride] += g[:, k]
    return grad_x_pad


def _im2col_2d(
    x_pad: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    out_size: Tuple[int, int],
) -> np.ndarray:
    """``(N, C, H_pad, W_pad)`` -> ``(C*kh*kw, N*oH*oW)`` with one strided gather.

    Kernel-major layout for the same single-GEMM reason as :func:`_im2col_1d`.
    """
    kh, kw = kernel_size
    sh, sw = stride
    out_h, out_w = out_size
    n, c = x_pad.shape[:2]
    windows = sliding_window_view(x_pad, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
    return np.ascontiguousarray(windows.transpose(1, 4, 5, 0, 2, 3)).reshape(
        c * kh * kw, n * out_h * out_w
    )


def _col2im_2d(
    grad_cols: np.ndarray,
    n: int,
    in_channels: int,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    out_size: Tuple[int, int],
    padded_shape: Tuple[int, int],
) -> np.ndarray:
    """``(C*kh*kw, N*oH*oW)`` -> ``(N, C, H_pad, W_pad)``, one add per tap."""
    kh, kw = kernel_size
    sh, sw = stride
    out_h, out_w = out_size
    g = grad_cols.reshape(in_channels, kh, kw, n, out_h, out_w)
    grad_x_pad = np.zeros((n, in_channels) + padded_shape, dtype=grad_cols.dtype)
    transposed = grad_x_pad.transpose(1, 0, 2, 3)
    span_h = (out_h - 1) * sh + 1
    span_w = (out_w - 1) * sw + 1
    for a in range(kh):
        for b in range(kw):
            transposed[:, :, a : a + span_h : sh, b : b + span_w : sw] += g[:, a, b]
    return grad_x_pad


def _pad_1d(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the length axis (cheaper than ``np.pad`` on the hot path)."""
    if not padding:
        return x
    n, c, length = x.shape
    x_pad = np.zeros((n, c, length + 2 * padding), dtype=x.dtype)
    x_pad[:, :, padding : padding + length] = x
    return x_pad


def _pad_2d(x: np.ndarray, padding: Tuple[int, int]) -> np.ndarray:
    """Zero-pad the two spatial axes (cheaper than ``np.pad`` on the hot path)."""
    ph, pw = padding
    if not (ph or pw):
        return x
    n, c, h, w = x.shape
    x_pad = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=x.dtype)
    x_pad[:, :, ph : ph + h, pw : pw + w] = x
    return x_pad


def _pool_windows_1d(x: np.ndarray, pool_size: int, stride: int) -> np.ndarray:
    """Zero-copy ``(N, C, out_len, P)`` window view over ``(N, C, L)``."""
    return sliding_window_view(x, pool_size, axis=2)[:, :, ::stride, :]


def _pool_windows_2d(
    x: np.ndarray, pool_size: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    """``(N, C, oH, oW, ph*pw)`` windows over ``(N, C, H, W)`` (single gather)."""
    ph, pw = pool_size
    sh, sw = stride
    windows = sliding_window_view(x, (ph, pw), axis=(2, 3))[:, :, ::sh, ::sw]
    return windows.reshape(windows.shape[:4] + (ph * pw,))


class Layer:
    """Base class for all layers.

    Subclasses that own trainable parameters must populate ``self._params``
    and ``self._grads`` with aligned lists of arrays.  Stateless layers can
    rely on the default empty lists.
    """

    def __init__(self) -> None:
        self._params: List[np.ndarray] = []
        self._grads: List[np.ndarray] = []

    # -- interface -------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[np.ndarray]:
        return self._params

    def gradients(self) -> List[np.ndarray]:
        return self._grads

    def zero_grad(self) -> None:
        for grad in self._grads:
            grad[...] = 0.0

    # -- introspection ---------------------------------------------------
    @property
    def n_parameters(self) -> int:
        return int(sum(p.size for p in self._params))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    weight_init, bias_init:
        Initializer names or callables (see :mod:`repro.nn.initializers`).
    use_bias:
        If ``False`` the layer is a pure linear map.
    rng:
        Random generator used for initialization; pass one for
        reproducibility.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight_init: str = "he_normal",
        bias_init: str = "zeros",
        use_bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense layer dimensions must be positive")
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.use_bias = use_bias
        self.weight = as_param(get_initializer(weight_init)((in_features, out_features), rng))
        self.grad_weight = np.zeros_like(self.weight)
        self._params = [self.weight]
        self._grads = [self.grad_weight]
        if use_bias:
            self.bias = as_param(get_initializer(bias_init)((out_features,), rng))
            self.grad_bias = np.zeros_like(self.bias)
            self._params.append(self.bias)
            self._grads.append(self.grad_bias)
        self._cache_input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_float(x)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected input of shape (N, {self.in_features}), got {x.shape}"
            )
        self._cache_input = x
        out = x @ self.weight
        if self.use_bias:
            out = out + self.bias
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError("backward called before forward")
        x = self._cache_input
        self.grad_weight += x.T @ grad_output
        if self.use_bias:
            self.grad_bias += grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense({self.in_features}, {self.out_features}, bias={self.use_bias})"


class Flatten(Layer):
    """Flatten all non-batch dimensions into one."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._input_shape)


class Dropout(Layer):
    """Inverted dropout: active only when ``training=True``."""

    def __init__(self, rate: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("Dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng or np.random.default_rng()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class BatchNorm1d(Layer):
    """Batch normalization over the feature axis of ``(N, F)`` inputs.

    Keeps running estimates of mean/variance for inference, exactly as in
    Ioffe & Szegedy (2015).
    """

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        dtype = get_default_dtype()
        self.gamma = np.ones(num_features, dtype=dtype)
        self.beta = np.zeros(num_features, dtype=dtype)
        self.grad_gamma = np.zeros_like(self.gamma)
        self.grad_beta = np.zeros_like(self.beta)
        self._params = [self.gamma, self.beta]
        self._grads = [self.grad_gamma, self.grad_beta]
        self.running_mean = np.zeros(num_features, dtype=dtype)
        self.running_var = np.ones(num_features, dtype=dtype)
        self._cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expected input (N, {self.num_features}), got {x.shape}"
            )
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        x_hat = (x - mean) / np.sqrt(var + self.eps)
        self._cache = (x_hat, var, x - mean) if training else None
        return self.gamma * x_hat + self.beta

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward requires a preceding training-mode forward")
        x_hat, var, x_centered = self._cache
        n = grad_output.shape[0]
        inv_std = 1.0 / np.sqrt(var + self.eps)
        self.grad_gamma += (grad_output * x_hat).sum(axis=0)
        self.grad_beta += grad_output.sum(axis=0)
        dx_hat = grad_output * self.gamma
        # Standard batch-norm backward (sum over batch of the coupled terms).
        grad_input = (
            inv_std / n
        ) * (n * dx_hat - dx_hat.sum(axis=0) - x_hat * (dx_hat * x_hat).sum(axis=0))
        return grad_input


def _as_pair(value: Union[int, Sequence[int]]) -> Tuple[int, int]:
    if isinstance(value, int):
        return value, value
    pair = tuple(value)
    if len(pair) != 2:
        raise ValueError(f"Expected an int or pair, got {value!r}")
    return int(pair[0]), int(pair[1])


class Conv1d(Layer):
    """1-D convolution over inputs of shape ``(N, C, L)``.

    Implemented with an explicit sliding-window expansion (im2col) so both
    forward and backward are expressed as dense matrix products.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        weight_init: str = "he_normal",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError("kernel_size/stride must be positive, padding non-negative")
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = as_param(
            get_initializer(weight_init)((out_channels, in_channels, kernel_size), rng)
        )
        self.bias = np.zeros(out_channels, dtype=self.weight.dtype)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._params = [self.weight, self.bias]
        self._grads = [self.grad_weight, self.grad_bias]
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def _output_length(self, length: int) -> int:
        return (length + 2 * self.padding - self.kernel_size) // self.stride + 1

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_float(x)
        if x.ndim != 3 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv1d expected input (N, {self.in_channels}, L), got {x.shape}"
            )
        n, _, length = x.shape
        out_len = self._output_length(length)
        if out_len <= 0:
            raise ValueError("Conv1d output length would be non-positive")
        x_pad = _pad_1d(x, self.padding)
        # columns: (C*K, N*out_len) built from a single strided window view
        cols = _im2col_1d(x_pad, self.kernel_size, self.stride, out_len)
        w_mat = self.weight.reshape(self.out_channels, -1)
        out = w_mat @ cols  # (F, N*out_len), one contiguous GEMM
        out += self.bias[:, None]
        self._cache = (cols, x.shape, out_len)
        return out.reshape(self.out_channels, n, out_len).transpose(1, 0, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, input_shape, out_len = self._cache
        n, _, length = input_shape
        grad = grad_output.transpose(1, 0, 2).reshape(self.out_channels, -1)
        self.grad_bias += grad.sum(axis=1)
        self.grad_weight += (grad @ cols.T).reshape(self.weight.shape)
        grad_cols = self.weight.reshape(self.out_channels, -1).T @ grad
        padded_len = length + 2 * self.padding
        grad_x_pad = _col2im_1d(
            grad_cols,
            n,
            self.in_channels,
            self.kernel_size,
            self.stride,
            out_len,
            padded_len,
        )
        if self.padding:
            return grad_x_pad[:, :, self.padding : -self.padding]
        return grad_x_pad


class Conv2d(Layer):
    """2-D convolution over inputs of shape ``(N, C, H, W)`` using im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: Union[int, Sequence[int]],
        stride: Union[int, Sequence[int]] = 1,
        padding: Union[int, Sequence[int]] = 0,
        weight_init: str = "he_normal",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _as_pair(kernel_size)
        self.stride = _as_pair(stride)
        self.padding = _as_pair(padding)
        if min(self.kernel_size) <= 0 or min(self.stride) <= 0 or min(self.padding) < 0:
            raise ValueError("invalid kernel/stride/padding for Conv2d")
        kh, kw = self.kernel_size
        self.weight = as_param(
            get_initializer(weight_init)((out_channels, in_channels, kh, kw), rng)
        )
        self.bias = np.zeros(out_channels, dtype=self.weight.dtype)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._params = [self.weight, self.bias]
        self._grads = [self.grad_weight, self.grad_bias]
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...], Tuple[int, int]]] = None

    def _output_size(self, h: int, w: int) -> Tuple[int, int]:
        kh, kw = self.kernel_size
        sh, sw = self.stride
        ph, pw = self.padding
        out_h = (h + 2 * ph - kh) // sh + 1
        out_w = (w + 2 * pw - kw) // sw + 1
        return out_h, out_w

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_float(x)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected input (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n, _, h, w = x.shape
        out_h, out_w = self._output_size(h, w)
        if out_h <= 0 or out_w <= 0:
            raise ValueError("Conv2d output size would be non-positive")
        ph, pw = self.padding
        x_pad = _pad_2d(x, self.padding)
        cols = _im2col_2d(x_pad, self.kernel_size, self.stride, (out_h, out_w))
        w_mat = self.weight.reshape(self.out_channels, -1)
        out = w_mat @ cols  # (F, N*oH*oW), one contiguous GEMM
        out += self.bias[:, None]
        self._cache = (cols, x.shape, (out_h, out_w))
        return out.reshape(self.out_channels, n, out_h, out_w).transpose(1, 0, 2, 3)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, input_shape, (out_h, out_w) = self._cache
        n, _, h, w = input_shape
        ph, pw = self.padding
        grad = grad_output.transpose(1, 0, 2, 3).reshape(self.out_channels, -1)
        self.grad_bias += grad.sum(axis=1)
        self.grad_weight += (grad @ cols.T).reshape(self.weight.shape)
        grad_cols = self.weight.reshape(self.out_channels, -1).T @ grad
        grad_x_pad = _col2im_2d(
            grad_cols,
            n,
            self.in_channels,
            self.kernel_size,
            self.stride,
            (out_h, out_w),
            (h + 2 * ph, w + 2 * pw),
        )
        if ph or pw:
            return grad_x_pad[:, :, ph : ph + h, pw : pw + w]
        return grad_x_pad


class MaxPool1d(Layer):
    """1-D max pooling over ``(N, C, L)`` inputs."""

    def __init__(self, pool_size: int = 2, stride: Optional[int] = None) -> None:
        super().__init__()
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self.stride = stride or pool_size
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...]]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_float(x)
        n, c, length = x.shape
        out_len = (length - self.pool_size) // self.stride + 1
        if out_len <= 0:
            raise ValueError("MaxPool1d output length would be non-positive")
        windows = _pool_windows_1d(x, self.pool_size, self.stride)
        argmax = windows.argmax(axis=3)
        self._cache = (argmax, x.shape)
        return np.take_along_axis(windows, argmax[..., None], axis=3)[..., 0]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        argmax, input_shape = self._cache
        n, c, length = input_shape
        out_len = grad_output.shape[2]
        grad_input = np.zeros(input_shape, dtype=grad_output.dtype)
        n_idx = np.arange(n)[:, None, None]
        c_idx = np.arange(c)[None, :, None]
        pos = np.arange(out_len)[None, None, :] * self.stride + argmax
        np.add.at(grad_input, (n_idx, c_idx, pos), grad_output)
        return grad_input


class MaxPool2d(Layer):
    """2-D max pooling over ``(N, C, H, W)`` inputs."""

    def __init__(
        self,
        pool_size: Union[int, Sequence[int]] = 2,
        stride: Optional[Union[int, Sequence[int]]] = None,
    ) -> None:
        super().__init__()
        self.pool_size = _as_pair(pool_size)
        self.stride = _as_pair(stride) if stride is not None else self.pool_size
        if min(self.pool_size) <= 0 or min(self.stride) <= 0:
            raise ValueError("pool_size and stride must be positive")
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...], Tuple[int, int]]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_float(x)
        n, c, h, w = x.shape
        ph, pw = self.pool_size
        sh, sw = self.stride
        out_h = (h - ph) // sh + 1
        out_w = (w - pw) // sw + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError("MaxPool2d output size would be non-positive")
        windows = _pool_windows_2d(x, self.pool_size, self.stride)
        argmax = windows.argmax(axis=4)
        self._cache = (argmax, x.shape, (out_h, out_w))
        return np.take_along_axis(windows, argmax[..., None], axis=4)[..., 0]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        argmax, input_shape, (out_h, out_w) = self._cache
        n, c, h, w = input_shape
        ph, pw = self.pool_size
        sh, sw = self.stride
        grad_input = np.zeros(input_shape, dtype=grad_output.dtype)
        n_idx = np.arange(n)[:, None, None, None]
        c_idx = np.arange(c)[None, :, None, None]
        row_in_window = argmax // pw
        col_in_window = argmax % pw
        rows = np.arange(out_h)[None, None, :, None] * sh + row_in_window
        cols = np.arange(out_w)[None, None, None, :] * sw + col_in_window
        np.add.at(grad_input, (n_idx, c_idx, rows, cols), grad_output)
        return grad_input


class AvgPool1d(Layer):
    """1-D average pooling over ``(N, C, L)`` inputs."""

    def __init__(self, pool_size: int = 2, stride: Optional[int] = None) -> None:
        super().__init__()
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self.stride = stride or pool_size
        self._cache: Optional[Tuple[Tuple[int, ...], int]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_float(x)
        n, c, length = x.shape
        out_len = (length - self.pool_size) // self.stride + 1
        if out_len <= 0:
            raise ValueError("AvgPool1d output length would be non-positive")
        windows = _pool_windows_1d(x, self.pool_size, self.stride)
        self._cache = (x.shape, out_len)
        return windows.mean(axis=3)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, out_len = self._cache
        grad_input = np.zeros(input_shape, dtype=grad_output.dtype)
        share = grad_output / self.pool_size
        span = (out_len - 1) * self.stride + 1
        for k in range(self.pool_size):
            grad_input[:, :, k : k + span : self.stride] += share
        return grad_input


class AvgPool2d(Layer):
    """2-D average pooling over ``(N, C, H, W)`` inputs."""

    def __init__(
        self,
        pool_size: Union[int, Sequence[int]] = 2,
        stride: Optional[Union[int, Sequence[int]]] = None,
    ) -> None:
        super().__init__()
        self.pool_size = _as_pair(pool_size)
        self.stride = _as_pair(stride) if stride is not None else self.pool_size
        if min(self.pool_size) <= 0 or min(self.stride) <= 0:
            raise ValueError("pool_size and stride must be positive")
        self._cache: Optional[Tuple[Tuple[int, ...], Tuple[int, int]]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = as_float(x)
        n, c, h, w = x.shape
        ph, pw = self.pool_size
        sh, sw = self.stride
        out_h = (h - ph) // sh + 1
        out_w = (w - pw) // sw + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError("AvgPool2d output size would be non-positive")
        windows = _pool_windows_2d(x, self.pool_size, self.stride)
        self._cache = (x.shape, (out_h, out_w))
        return windows.mean(axis=4)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, (out_h, out_w) = self._cache
        ph, pw = self.pool_size
        sh, sw = self.stride
        grad_input = np.zeros(input_shape, dtype=grad_output.dtype)
        share = grad_output / (ph * pw)
        span_h = (out_h - 1) * sh + 1
        span_w = (out_w - 1) * sw + 1
        for a in range(ph):
            for b in range(pw):
                grad_input[:, :, a : a + span_h : sh, b : b + span_w : sw] += share
        return grad_input


class GlobalAveragePool1d(Layer):
    """Average over the length dimension of ``(N, C, L)`` inputs -> ``(N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._length: Optional[int] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._length = x.shape[2]
        return x.mean(axis=2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._length is None:
            raise RuntimeError("backward called before forward")
        # Broadcast (no np.repeat materialisation until the division runs).
        expanded = np.broadcast_to(
            grad_output[:, :, None], grad_output.shape + (self._length,)
        )
        return expanded / self._length
