"""Unified observability layer: metrics registry, tracing, drift monitor.

Three stdlib-only pillars (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics` — the process-wide :data:`~repro.obs.metrics.REGISTRY`
  of counters/gauges/histograms with Prometheus text exposition;
* :mod:`repro.obs.tracing` — :class:`~repro.obs.tracing.Span` /
  :class:`~repro.obs.tracing.Tracer` structured tracing with JSONL export,
  and :func:`~repro.obs.tracing.trace_span`, the single timing primitive;
* :mod:`repro.obs.drift` — :class:`~repro.obs.drift.CoverageDriftMonitor`,
  the sliding-window conformal coverage alarm used by the serving layer.
"""

from .drift import (
    STATE_ALARMING,
    STATE_OK,
    CoverageDriftMonitor,
    outcome_from_verdict,
)
from .metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)
from .tracing import Span, Tracer, trace_span

__all__ = [
    "CoverageDriftMonitor",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "STATE_ALARMING",
    "STATE_OK",
    "Span",
    "Tracer",
    "outcome_from_verdict",
    "parse_prometheus_text",
    "trace_span",
]
