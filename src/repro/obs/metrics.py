"""Process-wide metrics registry with Prometheus text exposition.

This module is the single home for runtime counters, gauges and histograms
across the serving layer, the scan scheduler, the result cache and the
feature store.  It is deliberately stdlib-only so that every subsystem —
including the multiprocessing scan workers and the ``tools/lint`` static
checker — can depend on it without pulling in numpy.

Conventions (enforced statically by lint rule R7, ``metric-naming``):

* every metric family is registered exactly once, at module import time,
  via the process-wide :data:`REGISTRY`;
* family names match ``repro_<subsystem>_<name>`` (for example
  ``repro_serve_requests_total`` or ``repro_engine_shard_retries_total``).

Families are label-aware in the style of the official Prometheus clients:
``family.labels(route="/scan").inc()`` creates (or reuses) a child time
series keyed by the label values; families declared without label names
act directly as their single unlabeled child.  All mutation is guarded by
a per-family lock, so instrumented code may update metrics from any thread
without coordination.

:func:`MetricsRegistry.render_prometheus` emits the text exposition format
(``# HELP`` / ``# TYPE`` plus samples; histograms expand to cumulative
``_bucket``/``_sum``/``_count`` series) and :func:`parse_prometheus_text`
parses it back — the parser is what the CI smoke and the unit tests use to
validate that the endpoint output is well-formed.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "parse_prometheus_text",
]

#: Default histogram bucket upper bounds (seconds) — tuned for request
#: latencies between a few milliseconds and tens of seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Enforced family-name convention: ``repro_<subsystem>_<name>``.
_NAME_RE = re.compile(r"^repro_[a-z][a-z0-9]*_[a-z][a-z0-9_]*$")

#: Label names must be valid Prometheus label identifiers.
_LABEL_RE = re.compile(r"^[a-z_][a-z0-9_]*$")

#: One exposition sample line: ``name{labels} value`` (labels optional).
_SAMPLE_RE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")

#: One ``key="value"`` pair inside a sample's label set.
_LABEL_PAIR_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus clients do."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    """Escape a label value for the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` string for the text exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


class _Family:
    """Shared machinery for one registered metric family.

    A family owns its name, help string, declared label names and the map
    of children keyed by label-value tuples.  Subclasses implement the
    child factory and the exposition of one child's samples.
    """

    kind = "untyped"

    def __init__(self, name: str, help_text: str, label_names: Tuple[str, ...]) -> None:
        self.name = name
        self.help_text = help_text
        self.label_names = label_names
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}

    def _make_child(self) -> object:
        raise NotImplementedError

    def labels(self, **labels: str) -> object:
        """Return the child time series for the given label values."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _default_child(self) -> object:
        """The single unlabeled child (valid only for label-less families)."""
        if self.label_names:
            raise ValueError(f"{self.name}: labeled family requires .labels(...)")
        return self.labels()

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Snapshot of ``(label_values, child)`` pairs, sorted for output."""
        with self._lock:
            return sorted(self._children.items())

    def _label_str(self, values: Sequence[str], extra: str = "") -> str:
        """Render ``{k="v",...}`` for one child (empty string when bare)."""
        pairs = [
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.label_names, values)
        ]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def samples(self) -> List[str]:
        """Exposition sample lines for every child of this family."""
        raise NotImplementedError


class _CounterChild:
    """One monotonically increasing counter time series."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current counter value."""
        with self._lock:
            return self._value


class Counter(_Family):
    """A family of monotonically increasing counters."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def labels(self, **labels: str) -> _CounterChild:
        """Child counter for the given label values."""
        return super().labels(**labels)  # type: ignore[return-value]

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabeled child (label-less families only)."""
        self._default_child().inc(amount)  # type: ignore[attr-defined]

    def value(self, **labels: str) -> float:
        """Current value of one child (the unlabeled child by default)."""
        child = self.labels(**labels) if labels or self.label_names else self._default_child()
        return child.value  # type: ignore[attr-defined]

    def samples(self) -> List[str]:
        """``name{labels} value`` line per child."""
        return [
            f"{self.name}{self._label_str(values)} {_format_value(child.value)}"
            for values, child in self.children()
        ]


class _GaugeChild:
    """One gauge time series (a value that can go up and down)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current gauge value."""
        with self._lock:
            return self._value


class Gauge(_Family):
    """A family of gauges — instantaneous values that move both ways."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def labels(self, **labels: str) -> _GaugeChild:
        """Child gauge for the given label values."""
        return super().labels(**labels)  # type: ignore[return-value]

    def set(self, value: float) -> None:
        """Set the unlabeled child (label-less families only)."""
        self._default_child().set(value)  # type: ignore[attr-defined]

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the unlabeled child (label-less families only)."""
        self._default_child().inc(amount)  # type: ignore[attr-defined]

    def value(self, **labels: str) -> float:
        """Current value of one child (the unlabeled child by default)."""
        child = self.labels(**labels) if labels or self.label_names else self._default_child()
        return child.value  # type: ignore[attr-defined]

    def samples(self) -> List[str]:
        """``name{labels} value`` line per child."""
        return [
            f"{self.name}{self._label_str(values)} {_format_value(child.value)}"
            for values, child in self.children()
        ]


class _HistogramChild:
    """One histogram time series with fixed bucket boundaries."""

    __slots__ = ("_lock", "_buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # final slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        slot = len(self._buckets)
        for i, bound in enumerate(self._buckets):
            if value <= bound:
                slot = i
                break
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Tuple[List[int], float, int]:
        """Return ``(cumulative_bucket_counts, sum, count)`` atomically."""
        with self._lock:
            cumulative: List[int] = []
            running = 0
            for count in self._counts:
                running += count
                cumulative.append(running)
            return cumulative, self._sum, self._count

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum


class Histogram(_Family):
    """A family of fixed-bucket histograms."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("histogram buckets must be strictly increasing")
        super().__init__(name, help_text, label_names)
        self.buckets = tuple(float(b) for b in buckets)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def labels(self, **labels: str) -> _HistogramChild:
        """Child histogram for the given label values."""
        return super().labels(**labels)  # type: ignore[return-value]

    def observe(self, value: float) -> None:
        """Observe into the unlabeled child (label-less families only)."""
        self._default_child().observe(value)  # type: ignore[attr-defined]

    def samples(self) -> List[str]:
        """Cumulative ``_bucket``/``_sum``/``_count`` lines per child."""
        lines: List[str] = []
        bounds = [_format_value(b) for b in self.buckets] + ["+Inf"]
        for values, child in self.children():
            cumulative, total, count = child.snapshot()  # type: ignore[attr-defined]
            for bound, cum in zip(bounds, cumulative):
                extra = f'le="{bound}"'
                lines.append(
                    f"{self.name}_bucket{self._label_str(values, extra)} {cum}"
                )
            lines.append(f"{self.name}_sum{self._label_str(values)} {_format_value(total)}")
            lines.append(f"{self.name}_count{self._label_str(values)} {count}")
        return lines


class MetricsRegistry:
    """Thread-safe registry of metric families for one process.

    Families are created with :meth:`counter`, :meth:`gauge` and
    :meth:`histogram`; re-registering an identical family returns the
    existing object (so ``importlib.reload`` is harmless) while a
    conflicting redefinition raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _register(self, cls: type, name: str, help_text: str, label_names: Tuple[str, ...], **kwargs: object) -> _Family:
        """Get-or-create one family, validating name and label identifiers."""
        if not _NAME_RE.match(name):
            raise ValueError(
                f"metric name {name!r} does not match repro_<subsystem>_<name>"
            )
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} for {name}")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != label_names:
                    raise ValueError(f"metric {name!r} re-registered with a different shape")
                return existing
            family = cls(name, help_text, label_names, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str, labels: Sequence[str] = ()) -> Counter:
        """Register (or fetch) a counter family."""
        return self._register(Counter, name, help_text, tuple(labels))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str, labels: Sequence[str] = ()) -> Gauge:
        """Register (or fetch) a gauge family."""
        return self._register(Gauge, name, help_text, tuple(labels))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Register (or fetch) a histogram family with fixed buckets."""
        return self._register(
            Histogram, name, help_text, tuple(labels), buckets=tuple(buckets)
        )  # type: ignore[return-value]

    def families(self) -> List[_Family]:
        """All registered families, sorted by name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[_Family]:
        """Look up a family by name (``None`` when unregistered)."""
        with self._lock:
            return self._families.get(name)

    def value(self, name: str, **labels: str) -> float:
        """Convenience accessor: current value of one counter/gauge child.

        Returns ``0.0`` for families that exist but have no matching child
        yet, so callers can read counters that have never been hit.
        """
        family = self.get(name)
        if family is None:
            raise KeyError(name)
        try:
            return family.value(**labels)  # type: ignore[attr-defined]
        except AttributeError:
            raise TypeError(f"{name} is a {family.kind}; read its children directly")

    def render_prometheus(self) -> str:
        """Render every family in the Prometheus text exposition format."""
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {_escape_help(family.help_text)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            lines.extend(family.samples())
        return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse text-exposition output into ``{(name, labels): value}``.

    ``labels`` is a sorted tuple of ``(key, value)`` pairs.  Raises
    ``ValueError`` on any line that is neither a comment nor a well-formed
    sample — this is the validation the CI smoke relies on.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"malformed exposition line: {raw!r}")
        name, label_blob, value_text = match.groups()
        labels: List[Tuple[str, str]] = []
        if label_blob:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(label_blob):
                labels.append((pair.group(1), pair.group(2)))
                consumed = pair.end()
            remainder = label_blob[consumed:].strip().strip(",")
            if remainder:
                raise ValueError(f"malformed label set in line: {raw!r}")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            try:
                value = float(value_text)
            except ValueError as exc:
                raise ValueError(f"malformed sample value in line: {raw!r}") from exc
        samples[(name, tuple(sorted(labels)))] = value
    return samples


#: The process-wide default registry every subsystem registers into.
REGISTRY = MetricsRegistry()
