"""Conformal coverage-drift monitoring for the serving layer.

A calibrated Mondrian ICP promises that, at confidence ``c``, the true
label falls inside the emitted prediction region with probability at
least ``c``.  At serve time the true labels are unknown, but one failure
mode is directly observable: an **empty** prediction region (verdict
``"anomalous (no label fits)"``) can never contain the true label, so
the fraction of non-empty regions over a sliding window is a sound
*lower bound* on observed coverage.  When the calibration set goes stale
— model drift, data drift, or a tampered artifact — the empty-region
rate spikes and the bound collapses well below the nominal confidence.

:class:`CoverageDriftMonitor` keeps that sliding window per model, and a
hysteresis alarm keeps the health signal from flapping: the state trips
from ``ok`` to ``alarming`` only when the window holds at least
``min_observations`` outcomes and the observed bound falls below
``nominal - trip_margin``, and it clears only once the bound recovers
above ``nominal - clear_margin`` (with ``clear_margin < trip_margin``).
The serving layer surfaces the state in ``/healthz`` as *degraded* (not
down) and resets the window whenever the model artifact is hot-reloaded
with a fresh fingerprint — the operator's remediation loop is
``repro calibrate`` followed by ``POST /reload``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Iterable, Optional, Tuple

__all__ = [
    "CoverageDriftMonitor",
    "STATE_ALARMING",
    "STATE_OK",
    "VERDICT_ANOMALOUS",
    "outcome_from_verdict",
]

#: Alarm states (hysteresis keeps transitions sticky).
STATE_OK = "ok"
STATE_ALARMING = "alarming"

#: Verdict string emitted for an empty prediction region (kept in sync
#: with ``core.results.TrojanDecision.verdict``).
VERDICT_ANOMALOUS = "anomalous (no label fits)"

#: Verdict string emitted for failed scans — excluded from the window.
_VERDICT_ERROR = "error"

DEFAULT_WINDOW = 256
DEFAULT_MIN_OBSERVATIONS = 32
DEFAULT_TRIP_MARGIN = 0.15
DEFAULT_CLEAR_MARGIN = 0.05


def outcome_from_verdict(verdict: str) -> Optional[bool]:
    """Map a triage verdict to a coverage outcome.

    Returns ``True`` (covered — the region is non-empty, so it *may*
    contain the true label), ``False`` (guaranteed miss — empty region),
    or ``None`` for error records, which carry no coverage information.
    """
    if verdict == _VERDICT_ERROR:
        return None
    return verdict != VERDICT_ANOMALOUS


class CoverageDriftMonitor:
    """Sliding-window observed-vs-nominal coverage with a hysteresis alarm.

    Thread-safe; observations arrive from batch worker threads while
    ``/healthz`` snapshots are taken from the request path.  The window
    stores ``(covered, nominal)`` pairs so that requests scanned at
    different confidence levels weight the nominal target correctly.
    """

    def __init__(
        self,
        nominal: float,
        window: int = DEFAULT_WINDOW,
        min_observations: int = DEFAULT_MIN_OBSERVATIONS,
        trip_margin: float = DEFAULT_TRIP_MARGIN,
        clear_margin: float = DEFAULT_CLEAR_MARGIN,
    ) -> None:
        if not 0.0 < nominal < 1.0:
            raise ValueError("nominal confidence must lie in (0, 1)")
        if window < 1:
            raise ValueError("window must be positive")
        if min_observations < 1 or min_observations > window:
            raise ValueError("min_observations must lie in [1, window]")
        if not 0.0 <= clear_margin < trip_margin:
            raise ValueError("require 0 <= clear_margin < trip_margin")
        self.nominal = float(nominal)
        self.window = int(window)
        self.min_observations = int(min_observations)
        self.trip_margin = float(trip_margin)
        self.clear_margin = float(clear_margin)
        self._lock = threading.Lock()
        self._outcomes: Deque[Tuple[bool, float]] = deque(maxlen=self.window)
        self._state = STATE_OK
        self._trips = 0
        self._observed_total = 0

    # -- observation ---------------------------------------------------------
    def observe(
        self, outcomes: Iterable[Optional[bool]], nominal: Optional[float] = None
    ) -> Optional[str]:
        """Record coverage outcomes; return the new state on a transition.

        ``outcomes`` may contain ``None`` entries (error records), which
        are skipped.  ``nominal`` overrides the monitor default for this
        batch — the confidence level the scan actually ran at.
        """
        level = self.nominal if nominal is None else float(nominal)
        with self._lock:
            before = self._state
            for outcome in outcomes:
                if outcome is None:
                    continue
                self._outcomes.append((bool(outcome), level))
                self._observed_total += 1
            self._evaluate_locked()
            after = self._state
        return after if after != before else None

    def observe_verdicts(
        self, verdicts: Iterable[str], nominal: Optional[float] = None
    ) -> Optional[str]:
        """Record triage verdict strings (see :func:`outcome_from_verdict`)."""
        return self.observe(
            (outcome_from_verdict(verdict) for verdict in verdicts), nominal=nominal
        )

    def reset(self) -> None:
        """Clear the window and the alarm (called after a hot reload)."""
        with self._lock:
            self._outcomes.clear()
            self._state = STATE_OK

    # -- state ---------------------------------------------------------------
    def _coverage_locked(self) -> Tuple[Optional[float], Optional[float]]:
        """``(observed, nominal)`` means over the window; ``None`` if empty."""
        if not self._outcomes:
            return None, None
        n = len(self._outcomes)
        observed = sum(1 for covered, _ in self._outcomes if covered) / n
        nominal = sum(level for _, level in self._outcomes) / n
        return observed, nominal

    def _evaluate_locked(self) -> None:
        """Apply the hysteresis state machine to the current window."""
        if len(self._outcomes) < self.min_observations:
            return
        observed, nominal = self._coverage_locked()
        assert observed is not None and nominal is not None
        if self._state == STATE_OK:
            if observed < nominal - self.trip_margin:
                self._state = STATE_ALARMING
                self._trips += 1
        elif observed >= nominal - self.clear_margin:
            self._state = STATE_OK

    @property
    def state(self) -> str:
        """Current alarm state (``"ok"`` or ``"alarming"``)."""
        with self._lock:
            return self._state

    @property
    def is_alarming(self) -> bool:
        """Whether the alarm is currently raised."""
        return self.state == STATE_ALARMING

    def observed_coverage(self) -> Optional[float]:
        """Observed coverage lower bound over the window (``None`` if empty)."""
        with self._lock:
            return self._coverage_locked()[0]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view for ``/healthz`` and the ``/metrics`` snapshot."""
        with self._lock:
            observed, nominal = self._coverage_locked()
            return {
                "state": self._state,
                "observed_coverage": observed,
                "nominal_coverage": self.nominal if nominal is None else nominal,
                "window": len(self._outcomes),
                "window_size": self.window,
                "min_observations": self.min_observations,
                "trip_margin": self.trip_margin,
                "clear_margin": self.clear_margin,
                "trips": self._trips,
                "observations_total": self._observed_total,
            }
