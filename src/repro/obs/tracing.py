"""Structured tracing: spans with ids/parent-ids, exported as JSONL.

A :class:`Tracer` collects :class:`Span` records for one logical trace —
a CLI scan, or the lifetime of a serve process.  Instrumented code does
not talk to a process global; the tracer is threaded explicitly through
the call path (``ScanEngine.scan_sources(..., tracer=...)``) so that
multiprocessing workers can run their own private tracer and ship the
finished spans back to the parent as plain dicts (:meth:`Tracer.export`
/ :meth:`Tracer.adopt`).

:func:`trace_span` is the single timing primitive for the whole codebase
(``perf.timing`` and the ``scan --profile`` stage dicts are built on it):
it always measures a monotonic ``duration_s``, and records a span only
when a tracer is supplied.  Nesting is tracked per-thread, so stage spans
opened inside a worker thread parent correctly without explicit wiring;
cross-thread and cross-process edges pass ``parent_id`` explicitly.

The JSONL export writes one span per line::

    {"trace_id": ..., "span_id": ..., "parent_id": ..., "name": ...,
     "start_unix_s": ..., "duration_s": ..., "attrs": {...}}

``parent_id`` is ``null`` for root spans; the parent/child ids let a
reader reconstruct the full pipeline tree (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

__all__ = ["Span", "Tracer", "trace_span"]


class Span:
    """One timed operation: a name, ids, wall-clock start and duration.

    Instances are yielded by :func:`trace_span`; after the ``with`` block
    exits, :attr:`duration_s` holds the elapsed monotonic seconds (also
    valid when no tracer recorded the span).
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_unix_s",
        "duration_s",
        "attrs",
    )

    def __init__(
        self,
        name: str,
        trace_id: str = "",
        span_id: str = "",
        parent_id: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_unix_s = 0.0
        self.duration_s = 0.0
        self.attrs: Dict[str, Any] = dict(attrs or {})

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (one JSONL line of the trace file)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_unix_s": self.start_unix_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects finished spans for one trace; thread-safe.

    ``id_prefix`` namespaces the generated span ids — scheduler workers
    use their shard id as prefix so ids stay unique when spans from many
    processes are merged into one trace file.  ``jsonl_path`` optionally
    names a file that :meth:`flush` appends drained spans to (the serve
    layer flushes from its batch worker threads and at shutdown).
    """

    def __init__(
        self,
        trace_id: str = "trace",
        id_prefix: str = "",
        jsonl_path: Optional[Union[str, Path]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.id_prefix = id_prefix
        self.jsonl_path = Path(jsonl_path) if jsonl_path is not None else None
        self._lock = threading.Lock()
        self._io_lock = threading.Lock()
        self._counter = itertools.count(1)
        self._finished: List[Span] = []
        self._local = threading.local()

    # -- span lifecycle ------------------------------------------------------
    def _next_id(self) -> str:
        """Allocate the next span id (prefix + per-tracer sequence)."""
        return f"{self.id_prefix}{next(self._counter):04d}"

    def _stack(self) -> List[Span]:
        """This thread's stack of open spans (for implicit parenting)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span_id(self) -> Optional[str]:
        """Id of the innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def _begin(self, span: Span, parent_id: Optional[str]) -> None:
        """Assign ids, resolve the parent and push onto the thread stack."""
        span.trace_id = self.trace_id
        span.span_id = self._next_id()
        span.parent_id = parent_id if parent_id is not None else self.current_span_id()
        span.start_unix_s = time.time()
        self._stack().append(span)

    def _finish(self, span: Span) -> None:
        """Pop the span from the thread stack and archive it."""
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._finished.append(span)

    def record(
        self,
        name: str,
        duration_s: float,
        parent_id: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-measured span (for cross-thread callbacks)."""
        span = Span(name, attrs=attrs)
        span.trace_id = self.trace_id
        span.span_id = self._next_id()
        span.parent_id = parent_id
        span.start_unix_s = time.time() - duration_s
        span.duration_s = float(duration_s)
        with self._lock:
            self._finished.append(span)
        return span

    # -- export / merge ------------------------------------------------------
    def export(self, drain: bool = False) -> List[Dict[str, Any]]:
        """Finished spans as dicts; ``drain=True`` also clears the buffer."""
        with self._lock:
            spans = [span.as_dict() for span in self._finished]
            if drain:
                self._finished.clear()
        return spans

    def adopt(self, span_dicts: Iterable[Dict[str, Any]]) -> None:
        """Merge spans exported by another tracer (e.g. a worker process).

        Adopted spans keep their own ids but are re-homed onto this
        tracer's ``trace_id`` so the merged file is one coherent trace.
        """
        adopted: List[Span] = []
        for entry in span_dicts:
            span = Span(
                str(entry.get("name", "")),
                trace_id=self.trace_id,
                span_id=str(entry.get("span_id", "")),
                parent_id=entry.get("parent_id"),
                attrs=dict(entry.get("attrs") or {}),
            )
            span.start_unix_s = float(entry.get("start_unix_s", 0.0))
            span.duration_s = float(entry.get("duration_s", 0.0))
            adopted.append(span)
        with self._lock:
            self._finished.extend(adopted)

    def write_jsonl(self, path: Union[str, Path]) -> int:
        """Write every finished span to ``path`` (one JSON dict per line)."""
        spans = self.export()
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span, sort_keys=True) + "\n")
        return len(spans)

    def flush(self) -> int:
        """Append drained spans to :attr:`jsonl_path` (no-op when unset).

        Serialised under an IO lock: several serve lane workers may flush
        the shared tracer concurrently, and interleaved appends would
        corrupt the JSONL stream.
        """
        if self.jsonl_path is None:
            return 0
        with self._io_lock:
            spans = self.export(drain=True)
            if not spans:
                return 0
            with self.jsonl_path.open("a", encoding="utf-8") as handle:
                for span in spans:
                    handle.write(json.dumps(span, sort_keys=True) + "\n")
        return len(spans)


class trace_span:
    """Context manager timing one operation and recording it as a span.

    ``tracer`` may be ``None``: the block is still timed (the yielded
    :class:`Span` gets a valid ``duration_s``) but nothing is recorded —
    this is what makes ``trace_span`` the single timing pathway shared by
    profiling, benchmarking and tracing.

    Example::

        with trace_span(tracer, "scan/extract", designs=4) as span:
            rows = extract(...)
        report.stage_seconds["extract"] = span.duration_s
    """

    __slots__ = ("_tracer", "_span", "_parent_id", "_t0")

    def __init__(
        self,
        tracer: Optional[Tracer],
        name: str,
        parent_id: Optional[str] = None,
        **attrs: Any,
    ) -> None:
        self._tracer = tracer
        self._span = Span(name, attrs=attrs)
        self._parent_id = parent_id
        self._t0 = 0.0

    def __enter__(self) -> Span:
        if self._tracer is not None:
            self._tracer._begin(self._span, self._parent_id)
        self._t0 = time.perf_counter()
        return self._span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self._span.duration_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self._span.attrs["error"] = getattr(exc_type, "__name__", str(exc_type))
        if self._tracer is not None:
            self._tracer._finish(self._span)
