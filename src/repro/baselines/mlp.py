"""Multi-layer perceptron baseline, wrapping :mod:`repro.nn`.

This is the "plain neural network" model family of the related work: a
standardising front-end plus a small fully-connected network trained with
Adam, exposed through the common baseline interface.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..features.scaling import StandardScaler
from ..nn import Dense, Dropout, ReLU, Sequential, Sigmoid
from .base import BaseClassifier


class MLPClassifier(BaseClassifier):
    """Fully connected binary classifier with configurable hidden layers."""

    def __init__(
        self,
        hidden_layers: Sequence[int] = (64, 32),
        epochs: int = 150,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        dropout: float = 0.1,
        seed: int = 0,
    ) -> None:
        if not hidden_layers:
            raise ValueError("hidden_layers must contain at least one layer size")
        if any(size <= 0 for size in hidden_layers):
            raise ValueError("hidden layer sizes must be positive")
        self.hidden_layers = tuple(hidden_layers)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.dropout = dropout
        self.seed = seed
        self._model: Optional[Sequential] = None
        self._scaler = StandardScaler()
        self._n_features: int = 0

    def _build(self, n_features: int) -> Sequential:
        rng = np.random.default_rng(self.seed)
        layers = []
        previous = n_features
        for size in self.hidden_layers:
            layers.append(Dense(previous, size, rng=rng))
            layers.append(ReLU())
            if self.dropout > 0:
                layers.append(Dropout(self.dropout, rng=rng))
            previous = size
        layers.append(Dense(previous, 1, rng=rng))
        layers.append(Sigmoid())
        return Sequential(
            layers, loss="bce", optimizer="adam", learning_rate=self.learning_rate
        )

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        x, y = self._validate_xy(x, y)
        self._n_features = x.shape[1]
        x_scaled = self._scaler.fit_transform(x)
        self._model = self._build(x.shape[1])
        self._model.fit(
            x_scaled,
            y.astype(np.float64),
            epochs=self.epochs,
            batch_size=self.batch_size,
            rng=np.random.default_rng(self.seed + 1),
        )
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self._model is None:
            raise RuntimeError("MLPClassifier must be fitted first")
        x = self._validate_x(x, self._n_features)
        positive = self._model.predict_proba(self._scaler.transform(x)).reshape(-1)
        return self._stack_proba(positive)
