"""Classical ML baselines used for comparison against NOODLE.

These correspond to the model families the paper's related-work section
cites for hardware-Trojan detection: SVM, plain neural networks, gradient
boosting (XGBoost-style) and random forests, plus logistic regression and a
single decision tree as simpler reference points.
"""

from .base import BaseClassifier
from .boosting import GradientBoostingClassifier
from .forest import RandomForestClassifier
from .logistic import LogisticRegression
from .mlp import MLPClassifier
from .svm import LinearSVM
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "BaseClassifier",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "GradientBoostingClassifier",
    "LinearSVM",
    "LogisticRegression",
    "MLPClassifier",
    "RandomForestClassifier",
]

#: Registry used by the baseline-comparison benchmark.
BASELINE_REGISTRY = {
    "logistic_regression": LogisticRegression,
    "linear_svm": LinearSVM,
    "decision_tree": DecisionTreeClassifier,
    "random_forest": RandomForestClassifier,
    "gradient_boosting": GradientBoostingClassifier,
    "mlp": MLPClassifier,
}
