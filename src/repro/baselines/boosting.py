"""Gradient-boosted trees with logistic loss (XGBoost-style baseline).

Each boosting round fits a small regression tree to the negative gradient of
the log-loss (the residual ``y - p``) and adds it to the additive logit
model with a shrinkage factor.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import BaseClassifier
from .logistic import _sigmoid
from .tree import DecisionTreeRegressor


class GradientBoostingClassifier(BaseClassifier):
    """Additive logit model of shallow regression trees."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_estimators <= 0 or learning_rate <= 0:
            raise ValueError("n_estimators and learning_rate must be positive")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self._trees: List[DecisionTreeRegressor] = []
        self._initial_logit: float = 0.0
        self._n_features: int = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        x, y = self._validate_xy(x, y)
        self._n_features = x.shape[1]
        rng = np.random.default_rng(self.seed)
        base_rate = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
        self._initial_logit = float(np.log(base_rate / (1.0 - base_rate)))
        logits = np.full(x.shape[0], self._initial_logit)
        self._trees = []
        n = x.shape[0]
        for i in range(self.n_estimators):
            residual = y - _sigmoid(logits)
            if self.subsample < 1.0:
                sample = rng.choice(n, size=max(2, int(self.subsample * n)), replace=False)
            else:
                sample = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=self.seed + i + 1,
            )
            tree.fit(x[sample], residual[sample])
            self._trees.append(tree)
            logits = logits + self.learning_rate * tree.predict(x)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("GradientBoostingClassifier must be fitted first")
        x = self._validate_x(x, self._n_features)
        logits = np.full(x.shape[0], self._initial_logit)
        for tree in self._trees:
            logits = logits + self.learning_rate * tree.predict(x)
        return logits

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return self._stack_proba(_sigmoid(self.decision_function(x)))
