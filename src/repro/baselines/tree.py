"""CART-style decision trees (classification and regression).

The classification tree is the building block for the random-forest baseline
and the regression tree for the gradient-boosting baseline — the two
tree-ensemble model families the related work applies to Trojan detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .base import BaseClassifier


@dataclass
class _Node:
    """A tree node: either an internal split or a leaf carrying a value."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0  # positive-class fraction (classification) or mean (regression)
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


def _gini(y: np.ndarray) -> float:
    if y.size == 0:
        return 0.0
    p = y.mean()
    return 2.0 * p * (1.0 - p)


def _variance(y: np.ndarray) -> float:
    if y.size == 0:
        return 0.0
    return float(np.var(y))


class _TreeBuilder:
    """Shared recursive splitting logic for both tree types."""

    def __init__(
        self,
        impurity,
        max_depth: int,
        min_samples_split: int,
        min_samples_leaf: int,
        max_features: Optional[int],
        rng: np.random.Generator,
    ) -> None:
        self.impurity = impurity
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng

    def build(self, x: np.ndarray, y: np.ndarray, depth: int = 0) -> _Node:
        node = _Node(value=float(y.mean()), n_samples=y.size)
        if (
            depth >= self.max_depth
            or y.size < self.min_samples_split
            or self.impurity(y) == 0.0
        ):
            return node
        feature, threshold = self._best_split(x, y)
        if feature < 0:
            return node
        mask = x[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self.build(x[mask], y[mask], depth + 1)
        node.right = self.build(x[~mask], y[~mask], depth + 1)
        return node

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        return self.rng.choice(n_features, size=self.max_features, replace=False)

    def _best_split(self, x: np.ndarray, y: np.ndarray) -> tuple:
        best_gain = 1e-12
        best_feature, best_threshold = -1, 0.0
        parent_impurity = self.impurity(y)
        n = y.size
        for feature in self._candidate_features(x.shape[1]):
            values = np.unique(x[:, feature])
            if values.size < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            # Cap the number of candidate thresholds for wide numeric features.
            if thresholds.size > 32:
                thresholds = np.quantile(x[:, feature], np.linspace(0.05, 0.95, 32))
                thresholds = np.unique(thresholds)
            for threshold in thresholds:
                mask = x[:, feature] <= threshold
                n_left = int(mask.sum())
                if n_left == 0 or n_left == n:
                    continue
                gain = parent_impurity - (
                    n_left / n * self.impurity(y[mask])
                    + (n - n_left) / n * self.impurity(y[~mask])
                )
                if gain > best_gain:
                    best_gain = gain
                    best_feature = int(feature)
                    best_threshold = float(threshold)
        return best_feature, best_threshold


def _predict_node(node: _Node, row: np.ndarray) -> float:
    while not node.is_leaf:
        node = node.left if row[node.feature] <= node.threshold else node.right
    return node.value


class DecisionTreeClassifier(BaseClassifier):
    """Binary CART classification tree (gini impurity)."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if max_depth <= 0:
            raise ValueError("max_depth must be positive")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: Optional[_Node] = None
        self._n_features: int = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        x, y = self._validate_xy(x, y)
        self._n_features = x.shape[1]
        builder = _TreeBuilder(
            impurity=_gini,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            rng=np.random.default_rng(self.seed),
        )
        self._root = builder.build(x, y.astype(np.float64))
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("DecisionTreeClassifier must be fitted first")
        x = self._validate_x(x, self._n_features)
        positive = np.array([_predict_node(self._root, row) for row in x])
        return self._stack_proba(positive)

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def _depth(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        if self._root is None:
            raise RuntimeError("DecisionTreeClassifier must be fitted first")
        return _depth(self._root)


class DecisionTreeRegressor:
    """CART regression tree (variance reduction), used by gradient boosting."""

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if max_depth <= 0:
            raise ValueError("max_depth must be positive")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: Optional[_Node] = None
        self._n_features: int = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if x.ndim != 2 or x.shape[0] != y.shape[0] or x.shape[0] == 0:
            raise ValueError("invalid training data for DecisionTreeRegressor")
        self._n_features = x.shape[1]
        builder = _TreeBuilder(
            impurity=_variance,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            rng=np.random.default_rng(self.seed),
        )
        self._root = builder.build(x, y)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("DecisionTreeRegressor must be fitted first")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self._n_features:
            raise ValueError(f"expected shape (N, {self._n_features}), got {x.shape}")
        return np.array([_predict_node(self._root, row) for row in x])
