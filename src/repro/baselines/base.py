"""Common interface for the classical-ML baseline classifiers.

Every baseline follows the same minimal protocol as the CNN modality
classifiers, so the conformal layer and the experiments can treat them
interchangeably:

* ``fit(x, y)``            -- train on a feature matrix and binary labels;
* ``predict_proba(x)``     -- ``(N, 2)`` class-probability matrix;
* ``predict(x)``           -- hard 0/1 labels.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class BaseClassifier:
    """Abstract base class for binary classifiers."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "BaseClassifier":
        raise NotImplementedError

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard labels from the positive-class probability."""
        return (self.predict_proba(x)[:, 1] >= threshold).astype(int)

    # -- shared validation -------------------------------------------------
    @staticmethod
    def _validate_xy(x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=int).reshape(-1)
        if x.ndim != 2:
            raise ValueError("x must be a 2-D feature matrix")
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of samples")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if not set(np.unique(y)) <= {0, 1}:
            raise ValueError("labels must be binary (0/1)")
        return x, y

    @staticmethod
    def _validate_x(x: np.ndarray, n_features: int) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != n_features:
            raise ValueError(f"expected shape (N, {n_features}), got {x.shape}")
        return x

    @staticmethod
    def _stack_proba(positive: np.ndarray) -> np.ndarray:
        positive = np.clip(np.asarray(positive, dtype=np.float64).reshape(-1), 0.0, 1.0)
        return np.column_stack([1.0 - positive, positive])
