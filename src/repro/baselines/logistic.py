"""L2-regularised logistic regression trained with full-batch gradient descent."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import BaseClassifier


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegression(BaseClassifier):
    """Binary logistic regression.

    Features are standardised internally so the fixed learning rate behaves
    across the very differently scaled RTL features.
    """

    def __init__(
        self,
        learning_rate: float = 0.1,
        n_iterations: int = 500,
        l2: float = 1e-3,
        tol: float = 1e-7,
    ) -> None:
        if learning_rate <= 0 or n_iterations <= 0 or l2 < 0:
            raise ValueError("invalid hyper-parameters for LogisticRegression")
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.tol = tol
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    def _standardize(self, x: np.ndarray) -> np.ndarray:
        assert self._mean is not None and self._scale is not None
        return (x - self._mean) / self._scale

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x, y = self._validate_xy(x, y)
        self._mean = x.mean(axis=0)
        std = x.std(axis=0)
        self._scale = np.where(std > 1e-12, std, 1.0)
        x_scaled = self._standardize(x)
        n_samples, n_features = x_scaled.shape
        self.weights = np.zeros(n_features)
        self.bias = 0.0
        previous_loss = np.inf
        for _ in range(self.n_iterations):
            logits = x_scaled @ self.weights + self.bias
            probabilities = _sigmoid(logits)
            error = probabilities - y
            grad_w = x_scaled.T @ error / n_samples + self.l2 * self.weights
            grad_b = error.mean()
            self.weights -= self.learning_rate * grad_w
            self.bias -= self.learning_rate * grad_b
            loss = float(
                -np.mean(
                    y * np.log(np.clip(probabilities, 1e-12, 1.0))
                    + (1 - y) * np.log(np.clip(1 - probabilities, 1e-12, 1.0))
                )
            )
            if abs(previous_loss - loss) < self.tol:
                break
            previous_loss = loss
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("LogisticRegression must be fitted first")
        x = self._validate_x(x, self.weights.shape[0])
        return self._standardize(x) @ self.weights + self.bias

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return self._stack_proba(_sigmoid(self.decision_function(x)))
