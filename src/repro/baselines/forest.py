"""Random forest classifier: bagged CART trees with feature subsampling."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import BaseClassifier
from .tree import DecisionTreeClassifier


class RandomForestClassifier(BaseClassifier):
    """Bootstrap-aggregated decision trees, probabilities averaged."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 8,
        min_samples_leaf: int = 1,
        max_features: Optional[str] = "sqrt",
        seed: int = 0,
    ) -> None:
        if n_estimators <= 0:
            raise ValueError("n_estimators must be positive")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._trees: List[DecisionTreeClassifier] = []
        self._n_features: int = 0

    def _resolve_max_features(self, n_features: int) -> Optional[int]:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(self.max_features, int):
            return min(self.max_features, n_features)
        raise ValueError(f"unsupported max_features {self.max_features!r}")

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        x, y = self._validate_xy(x, y)
        self._n_features = x.shape[1]
        rng = np.random.default_rng(self.seed)
        max_features = self._resolve_max_features(x.shape[1])
        self._trees = []
        n = x.shape[0]
        for i in range(self.n_estimators):
            bootstrap = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=self.seed + i + 1,
            )
            tree.fit(x[bootstrap], y[bootstrap])
            self._trees.append(tree)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("RandomForestClassifier must be fitted first")
        x = self._validate_x(x, self._n_features)
        positive = np.mean([tree.predict_proba(x)[:, 1] for tree in self._trees], axis=0)
        return self._stack_proba(positive)
