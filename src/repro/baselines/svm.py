"""Linear support-vector machine trained with the Pegasos algorithm.

Probabilities are produced by Platt scaling: a one-dimensional logistic
model fitted on the SVM decision scores, so the baseline plugs into the
Brier/conformal evaluation exactly like every other classifier.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import BaseClassifier
from .logistic import _sigmoid


class LinearSVM(BaseClassifier):
    """Soft-margin linear SVM (hinge loss + L2) via Pegasos SGD."""

    def __init__(
        self,
        regularization: float = 1e-2,
        n_iterations: int = 2000,
        seed: int = 0,
    ) -> None:
        if regularization <= 0 or n_iterations <= 0:
            raise ValueError("invalid hyper-parameters for LinearSVM")
        self.regularization = regularization
        self.n_iterations = n_iterations
        self.seed = seed
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0
        self._platt_a: float = 1.0
        self._platt_b: float = 0.0
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    def _standardize(self, x: np.ndarray) -> np.ndarray:
        assert self._mean is not None and self._scale is not None
        return (x - self._mean) / self._scale

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVM":
        x, y = self._validate_xy(x, y)
        self._mean = x.mean(axis=0)
        std = x.std(axis=0)
        self._scale = np.where(std > 1e-12, std, 1.0)
        x_scaled = self._standardize(x)
        signed = 2.0 * y - 1.0
        rng = np.random.default_rng(self.seed)
        n_samples, n_features = x_scaled.shape
        self.weights = np.zeros(n_features)
        self.bias = 0.0
        for t in range(1, self.n_iterations + 1):
            i = int(rng.integers(0, n_samples))
            eta = 1.0 / (self.regularization * t)
            margin = signed[i] * (x_scaled[i] @ self.weights + self.bias)
            self.weights *= 1.0 - eta * self.regularization
            if margin < 1.0:
                self.weights += eta * signed[i] * x_scaled[i]
                self.bias += eta * signed[i]
        self._fit_platt(x_scaled, y)
        return self

    def _fit_platt(self, x_scaled: np.ndarray, y: np.ndarray) -> None:
        """Fit a 1-D logistic map from decision scores to probabilities."""
        scores = x_scaled @ self.weights + self.bias
        a, b = 1.0, 0.0
        for _ in range(200):
            p = _sigmoid(a * scores + b)
            error = p - y
            grad_a = float(np.mean(error * scores))
            grad_b = float(np.mean(error))
            a -= 0.1 * grad_a
            b -= 0.1 * grad_b
        self._platt_a, self._platt_b = a, b

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("LinearSVM must be fitted first")
        x = self._validate_x(x, self.weights.shape[0])
        return self._standardize(x) @ self.weights + self.bias

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        scores = self.decision_function(x)
        return self._stack_proba(_sigmoid(self._platt_a * scores + self._platt_b))
