"""Module entry point: ``python -m repro`` runs the scan-engine CLI."""

from .engine.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
