"""Module entry point: ``python -m repro`` runs the scan-engine CLI.

Besides the one-shot subcommands (``train`` / ``calibrate`` / ``scan`` /
``report`` / ``bench`` / ``bench-serve``), this is also how the long-lived
scan service starts: ``python -m repro serve --artifact <dir>`` (see
``docs/SERVING.md``).
"""

from .engine.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
