"""ROC curve and AUC (paper Fig. 4).

Implemented from first principles (no sklearn dependency): thresholds are
taken at every distinct score, and the AUC is the exact trapezoidal area,
which for the rank-based formulation equals the probability that a random
Trojan-infected design scores higher than a random Trojan-free one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np


@dataclass
class ROCCurve:
    """False-positive and true-positive rates across thresholds."""

    false_positive_rate: np.ndarray
    true_positive_rate: np.ndarray
    thresholds: np.ndarray
    auc: float

    def as_dict(self) -> Dict[str, List[float]]:
        return {
            "false_positive_rate": self.false_positive_rate.tolist(),
            "true_positive_rate": self.true_positive_rate.tolist(),
            "thresholds": self.thresholds.tolist(),
            "auc": self.auc,
        }


def _validate(scores: np.ndarray, labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels, dtype=int).reshape(-1)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must align")
    if scores.size == 0:
        raise ValueError("cannot compute ROC of an empty set")
    if not set(np.unique(labels)) <= {0, 1}:
        raise ValueError("labels must be binary (0/1)")
    return scores, labels


def roc_curve(scores: np.ndarray, labels: np.ndarray) -> ROCCurve:
    """Compute the ROC curve of ``scores`` (higher = more likely positive)."""
    scores, labels = _validate(scores, labels)
    n_positive = int(labels.sum())
    n_negative = int(labels.size - n_positive)
    if n_positive == 0 or n_negative == 0:
        raise ValueError("ROC requires both classes to be present")

    order = np.argsort(-scores, kind="mergesort")
    sorted_labels = labels[order]
    sorted_scores = scores[order]

    tps = np.cumsum(sorted_labels)
    fps = np.cumsum(1 - sorted_labels)
    # Keep only the last index of each distinct score (threshold boundaries).
    distinct = np.r_[np.diff(sorted_scores) != 0, True]
    tps = tps[distinct]
    fps = fps[distinct]
    thresholds = sorted_scores[distinct]

    tpr = np.r_[0.0, tps / n_positive]
    fpr = np.r_[0.0, fps / n_negative]
    thresholds = np.r_[np.inf, thresholds]
    area = float(np.trapezoid(tpr, fpr))
    return ROCCurve(
        false_positive_rate=fpr, true_positive_rate=tpr, thresholds=thresholds, auc=area
    )


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve."""
    return roc_curve(scores, labels).auc


def rank_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """AUC via the Mann-Whitney rank statistic (ties handled by mid-ranks).

    Numerically equals :func:`roc_auc`; kept as an independent
    implementation used by property-based tests to cross-check the curve
    construction.
    """
    scores, labels = _validate(scores, labels)
    n_positive = int(labels.sum())
    n_negative = int(labels.size - n_positive)
    if n_positive == 0 or n_negative == 0:
        raise ValueError("AUC requires both classes to be present")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(scores)
    sorted_scores = scores[order]
    # Mid-ranks for ties.
    i = 0
    position = 1
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        mid_rank = (position + position + (j - i)) / 2.0
        ranks[order[i : j + 1]] = mid_rank
        position += j - i + 1
        i = j + 1
    positive_rank_sum = ranks[labels == 1].sum()
    u_statistic = positive_rank_sum - n_positive * (n_positive + 1) / 2.0
    return float(u_statistic / (n_positive * n_negative))
