"""Consolidated (radar-plot) metrics — paper Fig. 5.

The radar plot groups discrimination metrics (AUC, resolution, refinement
loss), combined calibration+discrimination metrics (Brier score, Brier skill
score) and point metrics (sensitivity, accuracy) on one normalised 0-1
scale.  :func:`consolidated_metrics` computes the raw values and
:func:`radar_axes` normalises them the way the figure presents them (metrics
where lower is better are inverted so that "bigger is better" on every
axis).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .brier import brier_decomposition, brier_score, brier_skill_score, sharpness
from .classification import accuracy, recall, specificity
from .roc import roc_auc

#: Radar axes in display order, with a flag saying whether the raw metric is
#: "higher is better" (True) or "lower is better" (False, inverted for display).
RADAR_AXES: List[Tuple[str, bool]] = [
    ("auc", True),
    ("resolution", True),
    ("refinement_loss", False),
    ("brier_score", False),
    ("brier_skill_score", True),
    ("sensitivity", True),
    ("accuracy", True),
]


def consolidated_metrics(
    probabilities: np.ndarray,
    labels: np.ndarray,
    threshold: float = 0.5,
    n_bins: int = 10,
) -> Dict[str, float]:
    """All metrics backing the radar plot, in raw (un-normalised) form."""
    probabilities = np.asarray(probabilities, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels, dtype=int).reshape(-1)
    predictions = (probabilities >= threshold).astype(int)
    decomposition = brier_decomposition(probabilities, labels, n_bins=n_bins)
    return {
        "auc": roc_auc(probabilities, labels),
        "resolution": decomposition.resolution,
        "refinement_loss": decomposition.refinement_loss,
        "reliability": decomposition.reliability,
        "brier_score": brier_score(probabilities, labels),
        "brier_skill_score": brier_skill_score(probabilities, labels),
        "sensitivity": recall(predictions, labels),
        "specificity": specificity(predictions, labels),
        "accuracy": accuracy(predictions, labels),
        "sharpness": sharpness(probabilities),
    }


def radar_axes(metrics: Dict[str, float]) -> Dict[str, float]:
    """Normalise the consolidated metrics onto the radar plot's 0-1 axes.

    Already-bounded metrics (AUC, accuracy, sensitivity) pass through;
    unbounded / small-scale ones (resolution, refinement loss, Brier skill
    score) are clipped into [0, 1]; "lower is better" metrics are inverted
    (``1 - value``) so a larger polygon is always better.
    """
    axes: Dict[str, float] = {}
    for name, higher_is_better in RADAR_AXES:
        if name not in metrics:
            raise KeyError(f"metric {name!r} missing from consolidated metrics")
        value = float(np.clip(metrics[name], 0.0, 1.0))
        axes[name] = value if higher_is_better else 1.0 - value
    return axes


def radar_polygon(metrics: Dict[str, float]) -> List[Tuple[str, float]]:
    """The radar polygon as an ordered list of ``(axis_name, value)`` pairs."""
    axes = radar_axes(metrics)
    return [(name, axes[name]) for name, _ in RADAR_AXES]
