"""Plain-text reporting helpers.

The benchmark harness prints the same rows/series the paper reports.  These
formatters keep that output consistent: an aligned table for Table I-style
comparisons, an ASCII sparkline-ish rendering for curves, and a simple radar
summary — all dependency-free so they run anywhere the tests run.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    title: str = "",
    float_format: str = "{:.4f}",
) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [
        max(len(column), *(len(r[i]) for r in rendered_rows)) for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append(" | ".join(rendered[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_metric_block(metrics: Mapping[str, float], title: str = "") -> str:
    """Render a name->value mapping as aligned ``name: value`` lines."""
    if not metrics:
        return title
    width = max(len(name) for name in metrics)
    lines = [title] if title else []
    for name, value in metrics.items():
        if isinstance(value, float):
            lines.append(f"{name.ljust(width)} : {value:.4f}")
        else:
            lines.append(f"{name.ljust(width)} : {value}")
    return "\n".join(lines)


def format_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    max_points: int = 20,
) -> str:
    """Render a curve as a compact list of (x, y) points, subsampled."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    n = len(xs)
    if n == 0:
        return f"{y_label} vs {x_label}: (empty)"
    step = max(1, n // max_points)
    picked = list(range(0, n, step))
    if picked[-1] != n - 1:
        picked.append(n - 1)
    points = ", ".join(f"({xs[i]:.3f}, {ys[i]:.3f})" for i in picked)
    return f"{y_label} vs {x_label}: {points}"


def format_radar(polygon: Sequence[Tuple[str, float]], title: str = "Radar") -> str:
    """Render radar axes as horizontal bars of '#' characters."""
    lines = [title]
    width = max(len(name) for name, _ in polygon) if polygon else 0
    for name, value in polygon:
        bar = "#" * int(round(value * 30))
        lines.append(f"{name.ljust(width)} | {bar} {value:.3f}")
    return "\n".join(lines)


def format_comparison(
    paper_values: Mapping[str, float],
    measured_values: Mapping[str, float],
    title: str = "Paper vs measured",
) -> str:
    """Side-by-side comparison of paper-reported and measured values."""
    rows: List[Dict[str, object]] = []
    for key in paper_values:
        rows.append(
            {
                "quantity": key,
                "paper": paper_values[key],
                "measured": measured_values.get(key, float("nan")),
            }
        )
    return format_table(rows, columns=["quantity", "paper", "measured"], title=title)
