"""Brier score, Brier skill score and the Murphy decomposition.

The Brier score is the paper's headline metric (Table I): the mean squared
error between predicted probabilities and binary outcomes.  The Murphy
decomposition splits it into reliability (calibration error), resolution
(how much the forecasts separate the outcomes) and uncertainty (the outcome
base-rate variance); resolution and refinement also feed the radar plot
(Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


def _validate(probabilities: np.ndarray, outcomes: np.ndarray) -> tuple:
    probabilities = np.asarray(probabilities, dtype=np.float64).reshape(-1)
    outcomes = np.asarray(outcomes, dtype=np.float64).reshape(-1)
    if probabilities.shape != outcomes.shape:
        raise ValueError("probabilities and outcomes must have the same length")
    if probabilities.size == 0:
        raise ValueError("cannot compute the Brier score of an empty set")
    if np.any(probabilities < -1e-9) or np.any(probabilities > 1 + 1e-9):
        raise ValueError("probabilities must lie in [0, 1]")
    if not set(np.unique(outcomes)) <= {0.0, 1.0}:
        raise ValueError("outcomes must be binary (0/1)")
    return np.clip(probabilities, 0.0, 1.0), outcomes


def brier_score(probabilities: np.ndarray, outcomes: np.ndarray) -> float:
    """Mean squared difference between predicted probability and outcome."""
    probabilities, outcomes = _validate(probabilities, outcomes)
    return float(np.mean((probabilities - outcomes) ** 2))


def brier_skill_score(probabilities: np.ndarray, outcomes: np.ndarray) -> float:
    """Skill relative to the climatological (base-rate) forecast.

    1 is a perfect forecast, 0 matches always predicting the base rate, and
    negative values are worse than the base-rate forecast.
    """
    probabilities, outcomes = _validate(probabilities, outcomes)
    base_rate = outcomes.mean()
    reference = brier_score(np.full_like(outcomes, base_rate), outcomes)
    if reference == 0.0:
        return 0.0
    return 1.0 - brier_score(probabilities, outcomes) / reference


@dataclass
class BrierDecomposition:
    """Murphy (1973) three-way decomposition of the Brier score."""

    reliability: float
    resolution: float
    uncertainty: float
    refinement_loss: float
    brier: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "reliability": self.reliability,
            "resolution": self.resolution,
            "uncertainty": self.uncertainty,
            "refinement_loss": self.refinement_loss,
            "brier": self.brier,
        }


def brier_decomposition(
    probabilities: np.ndarray, outcomes: np.ndarray, n_bins: int = 10
) -> BrierDecomposition:
    """Compute the binned Murphy decomposition.

    ``brier ≈ reliability - resolution + uncertainty`` (exactly, for binned
    forecasts).  The *refinement loss* is ``uncertainty - resolution``: the
    part of the Brier score that calibration alone cannot remove.
    """
    probabilities, outcomes = _validate(probabilities, outcomes)
    if n_bins <= 0:
        raise ValueError("n_bins must be positive")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bin_index = np.clip(np.digitize(probabilities, edges[1:-1]), 0, n_bins - 1)
    n = probabilities.size
    base_rate = outcomes.mean()

    # Per-bin sums in one bincount pass each (no Python loop over bins).
    counts = np.bincount(bin_index, minlength=n_bins).astype(np.float64)
    sum_forecast = np.bincount(bin_index, weights=probabilities, minlength=n_bins)
    sum_outcome = np.bincount(bin_index, weights=outcomes, minlength=n_bins)
    occupied = counts > 0
    mean_forecast = np.divide(sum_forecast, counts, out=np.zeros(n_bins), where=occupied)
    mean_outcome = np.divide(sum_outcome, counts, out=np.zeros(n_bins), where=occupied)
    reliability = float(
        (counts[occupied] * (mean_forecast - mean_outcome)[occupied] ** 2).sum() / n
    )
    resolution = float(
        (counts[occupied] * (mean_outcome[occupied] - base_rate) ** 2).sum() / n
    )
    uncertainty = base_rate * (1.0 - base_rate)
    return BrierDecomposition(
        reliability=float(reliability),
        resolution=float(resolution),
        uncertainty=float(uncertainty),
        refinement_loss=float(uncertainty - resolution),
        brier=brier_score(probabilities, outcomes),
    )


def sharpness(probabilities: np.ndarray) -> float:
    """Variance of the forecasts: the tendency to predict near 0 or 1."""
    probabilities = np.asarray(probabilities, dtype=np.float64).reshape(-1)
    if probabilities.size == 0:
        raise ValueError("cannot compute sharpness of an empty set")
    return float(np.var(probabilities))
