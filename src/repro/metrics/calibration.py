"""Confidence calibration diagnostics (reliability curves, ECE/MCE).

These back the paper's Fig. 3: the calibration curve plots observed outcome
frequency against predicted probability per bin, alongside a histogram of
the predicted probabilities (forecast sharpness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


@dataclass
class CalibrationCurve:
    """Binned reliability data: one entry per non-empty probability bin."""

    bin_centers: List[float] = field(default_factory=list)
    mean_predicted: List[float] = field(default_factory=list)
    observed_frequency: List[float] = field(default_factory=list)
    counts: List[int] = field(default_factory=list)
    n_bins: int = 10

    def as_dict(self) -> Dict[str, List[float]]:
        return {
            "bin_centers": list(self.bin_centers),
            "mean_predicted": list(self.mean_predicted),
            "observed_frequency": list(self.observed_frequency),
            "counts": list(self.counts),
        }

    @property
    def max_deviation(self) -> float:
        """Largest |observed - predicted| gap over the non-empty bins."""
        if not self.mean_predicted:
            return 0.0
        gaps = np.abs(
            np.asarray(self.observed_frequency) - np.asarray(self.mean_predicted)
        )
        return float(gaps.max())


def calibration_curve(
    probabilities: np.ndarray, outcomes: np.ndarray, n_bins: int = 10
) -> CalibrationCurve:
    """Compute the reliability (calibration) curve over equal-width bins."""
    probabilities = np.asarray(probabilities, dtype=np.float64).reshape(-1)
    outcomes = np.asarray(outcomes, dtype=np.float64).reshape(-1)
    if probabilities.shape != outcomes.shape:
        raise ValueError("probabilities and outcomes must align")
    if n_bins <= 0:
        raise ValueError("n_bins must be positive")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bin_index = np.clip(np.digitize(probabilities, edges[1:-1]), 0, n_bins - 1)
    # Per-bin aggregates via bincount (no Python loop over bins); only the
    # occupied bins are kept, matching the historical output exactly.
    counts = np.bincount(bin_index, minlength=n_bins)
    sum_predicted = np.bincount(bin_index, weights=probabilities, minlength=n_bins)
    sum_observed = np.bincount(bin_index, weights=outcomes, minlength=n_bins)
    occupied = np.flatnonzero(counts)
    centers = (edges[:-1] + edges[1:]) / 2.0
    curve = CalibrationCurve(n_bins=n_bins)
    curve.bin_centers = centers[occupied].tolist()
    curve.mean_predicted = (sum_predicted[occupied] / counts[occupied]).tolist()
    curve.observed_frequency = (sum_observed[occupied] / counts[occupied]).tolist()
    curve.counts = counts[occupied].tolist()
    return curve


def expected_calibration_error(
    probabilities: np.ndarray, outcomes: np.ndarray, n_bins: int = 10
) -> float:
    """Count-weighted average |observed - predicted| over bins (ECE)."""
    curve = calibration_curve(probabilities, outcomes, n_bins=n_bins)
    if not curve.counts:
        return 0.0
    counts = np.asarray(curve.counts, dtype=np.float64)
    gaps = np.abs(
        np.asarray(curve.observed_frequency) - np.asarray(curve.mean_predicted)
    )
    return float((counts * gaps).sum() / counts.sum())


def maximum_calibration_error(
    probabilities: np.ndarray, outcomes: np.ndarray, n_bins: int = 10
) -> float:
    """Worst-bin calibration gap (MCE)."""
    return calibration_curve(probabilities, outcomes, n_bins=n_bins).max_deviation


def probability_histogram(
    probabilities: np.ndarray, n_bins: int = 10
) -> Dict[str, List[float]]:
    """Histogram of predicted probabilities (the bottom panel of Fig. 3)."""
    probabilities = np.asarray(probabilities, dtype=np.float64).reshape(-1)
    if n_bins <= 0:
        raise ValueError("n_bins must be positive")
    counts, edges = np.histogram(probabilities, bins=n_bins, range=(0.0, 1.0))
    centers = (edges[:-1] + edges[1:]) / 2.0
    return {"bin_centers": centers.tolist(), "counts": counts.astype(int).tolist()}
