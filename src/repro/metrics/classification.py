"""Point-prediction classification metrics.

The standard accuracy / precision / recall / specificity / F1 family for the
binary Trojan-free vs Trojan-infected decision, plus the confusion matrix.
Used both for reporting and as inputs to the consolidated radar plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass
class ConfusionMatrix:
    """Binary confusion matrix (positive class = Trojan-infected = 1)."""

    true_positive: int
    true_negative: int
    false_positive: int
    false_negative: int

    @property
    def total(self) -> int:
        return (
            self.true_positive + self.true_negative + self.false_positive + self.false_negative
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "true_positive": self.true_positive,
            "true_negative": self.true_negative,
            "false_positive": self.false_positive,
            "false_negative": self.false_negative,
        }


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray) -> ConfusionMatrix:
    """Build the binary confusion matrix from hard predictions."""
    predictions = np.asarray(predictions, dtype=int).reshape(-1)
    labels = np.asarray(labels, dtype=int).reshape(-1)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must align")
    return ConfusionMatrix(
        true_positive=int(np.sum((predictions == 1) & (labels == 1))),
        true_negative=int(np.sum((predictions == 0) & (labels == 0))),
        false_positive=int(np.sum((predictions == 1) & (labels == 0))),
        false_negative=int(np.sum((predictions == 0) & (labels == 1))),
    )


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    predictions = np.asarray(predictions, dtype=int).reshape(-1)
    labels = np.asarray(labels, dtype=int).reshape(-1)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must align")
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of an empty set")
    return float(np.mean(predictions == labels))


def precision(predictions: np.ndarray, labels: np.ndarray) -> float:
    cm = confusion_matrix(predictions, labels)
    denominator = cm.true_positive + cm.false_positive
    return cm.true_positive / denominator if denominator else 0.0


def recall(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Sensitivity / true-positive rate: fraction of Trojans caught."""
    cm = confusion_matrix(predictions, labels)
    denominator = cm.true_positive + cm.false_negative
    return cm.true_positive / denominator if denominator else 0.0


def specificity(predictions: np.ndarray, labels: np.ndarray) -> float:
    """True-negative rate: fraction of clean designs passed."""
    cm = confusion_matrix(predictions, labels)
    denominator = cm.true_negative + cm.false_positive
    return cm.true_negative / denominator if denominator else 0.0


def f1_score(predictions: np.ndarray, labels: np.ndarray) -> float:
    p = precision(predictions, labels)
    r = recall(predictions, labels)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


def balanced_accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Mean of sensitivity and specificity; robust to class imbalance."""
    return (recall(predictions, labels) + specificity(predictions, labels)) / 2.0


def classification_report(predictions: np.ndarray, labels: np.ndarray) -> Dict[str, float]:
    """All point metrics in one dictionary."""
    cm = confusion_matrix(predictions, labels)
    report: Dict[str, float] = {
        "accuracy": accuracy(predictions, labels),
        "precision": precision(predictions, labels),
        "recall": recall(predictions, labels),
        "specificity": specificity(predictions, labels),
        "f1": f1_score(predictions, labels),
        "balanced_accuracy": balanced_accuracy(predictions, labels),
    }
    report.update({key: float(value) for key, value in cm.as_dict().items()})
    return report
