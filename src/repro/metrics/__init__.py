"""Evaluation metrics: Brier family, calibration, ROC/AUC, classification,
radar consolidation and plain-text reporting."""

from .brier import (
    BrierDecomposition,
    brier_decomposition,
    brier_score,
    brier_skill_score,
    sharpness,
)
from .calibration import (
    CalibrationCurve,
    calibration_curve,
    expected_calibration_error,
    maximum_calibration_error,
    probability_histogram,
)
from .classification import (
    ConfusionMatrix,
    accuracy,
    balanced_accuracy,
    classification_report,
    confusion_matrix,
    f1_score,
    precision,
    recall,
    specificity,
)
from .radar import RADAR_AXES, consolidated_metrics, radar_axes, radar_polygon
from .report import (
    format_comparison,
    format_curve,
    format_metric_block,
    format_radar,
    format_table,
)
from .roc import ROCCurve, rank_auc, roc_auc, roc_curve

__all__ = [
    "BrierDecomposition",
    "CalibrationCurve",
    "ConfusionMatrix",
    "RADAR_AXES",
    "ROCCurve",
    "accuracy",
    "balanced_accuracy",
    "brier_decomposition",
    "brier_score",
    "brier_skill_score",
    "calibration_curve",
    "classification_report",
    "confusion_matrix",
    "consolidated_metrics",
    "expected_calibration_error",
    "f1_score",
    "format_comparison",
    "format_curve",
    "format_metric_block",
    "format_radar",
    "format_table",
    "maximum_calibration_error",
    "precision",
    "probability_histogram",
    "radar_axes",
    "radar_polygon",
    "rank_auc",
    "recall",
    "roc_auc",
    "roc_curve",
    "sharpness",
    "specificity",
]
