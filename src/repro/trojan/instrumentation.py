"""Benign instrumentation generator.

Real RTL designs are full of logic that *structurally* resembles Trojan
triggers: watchdog timers counting to large constants, debug event counters,
magic-number status decoders.  A detector that merely flags "counter
compared against a wide constant" drowns in false positives on such designs.

To keep the synthetic benchmark honest, the suite builder sprinkles this
benign instrumentation over Trojan-free *and* Trojan-infected designs alike,
so the learned models must separate malicious payload wiring from ordinary
housekeeping logic rather than keying on the mere presence of a counter.

Unlike a Trojan payload, instrumentation never rewires existing outputs — it
only adds new, documented status outputs, which is exactly how legitimate
designers add debug visibility.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..hdl import ast_nodes as ast
from ..hdl.emitter import emit_module
from ..hdl.parser import parse_module
from . import primitives as p


def _add_output_port(module: ast.Module, name: str, width: int = 1) -> None:
    """Declare and expose a new output port on the module."""
    rng = p.bit_range(width - 1) if width > 1 else None
    module.ports.append(name)
    declaration = ast.PortDeclaration(direction="output", names=[name], range=rng)
    insert_at = 0
    for i, item in enumerate(module.items):
        if isinstance(item, ast.PortDeclaration):
            insert_at = i + 1
    module.items.insert(insert_at, declaration)


def add_watchdog_timer(module: ast.Module, rng: np.random.Generator) -> bool:
    """A timeout counter that raises a status output at a large count."""
    clock = p.find_clock(module)
    if clock is None:
        return False
    reset = p.find_reset(module)
    width = int(rng.integers(10, 20))
    timeout = int(rng.integers(1 << (width - 2), (1 << width) - 1))
    counter = p.fresh_name(module, "wd_counter")
    flag = p.fresh_name(module, "wd_timeout")

    increment = p.nonblocking(p.ident(counter), p.binop("+", p.ident(counter), p.num(1, width)))
    if reset is not None:
        body = p.block(
            [
                p.if_stmt(
                    p.ident(reset),
                    p.block([p.nonblocking(p.ident(counter), p.num(0, width))]),
                    p.block([increment]),
                )
            ]
        )
        always = p.clocked_always(body, clock=clock, reset=reset)
    else:
        always = p.clocked_always(p.block([increment]), clock=clock)

    _add_output_port(module, flag)
    module.items.append(p.reg_decl(counter, width))
    module.items.append(always)
    module.items.append(
        p.assign(p.ident(flag), p.eq(p.ident(counter), p.num(timeout, width, base="h")))
    )
    return True


def add_event_counter(module: ast.Module, rng: np.random.Generator) -> bool:
    """A performance/debug counter gated by an existing 1-bit signal."""
    clock = p.find_clock(module)
    if clock is None:
        return False
    reset = p.find_reset(module)
    narrow_inputs = [name for name, width in p.input_ports(module) if width == 1]
    skip = {clock, reset}
    candidates = [name for name in narrow_inputs if name not in skip]
    if not candidates:
        return False
    gate = candidates[int(rng.integers(0, len(candidates)))]
    width = int(rng.integers(8, 16))
    counter = p.fresh_name(module, "evt_count")
    out = p.fresh_name(module, "evt_snapshot")

    increment = p.if_stmt(
        p.ident(gate),
        p.block(
            [p.nonblocking(p.ident(counter), p.binop("+", p.ident(counter), p.num(1, width)))]
        ),
    )
    if reset is not None:
        body = p.block(
            [
                p.if_stmt(
                    p.ident(reset),
                    p.block([p.nonblocking(p.ident(counter), p.num(0, width))]),
                    p.block([increment]),
                )
            ]
        )
        always = p.clocked_always(body, clock=clock, reset=reset)
    else:
        always = p.clocked_always(p.block([increment]), clock=clock)

    _add_output_port(module, out, width)
    module.items.append(p.reg_decl(counter, width))
    module.items.append(always)
    module.items.append(p.assign(p.ident(out), p.ident(counter)))
    return True


def add_status_decoder(module: ast.Module, rng: np.random.Generator) -> bool:
    """A magic-value decoder on a data input driving a benign status output."""
    candidates = p.data_inputs(module, min_width=4)
    if not candidates:
        return False
    name, width = candidates[int(rng.integers(0, len(candidates)))]
    magic = int(rng.integers(1, (1 << min(width, 30)) - 1))
    alt = int(rng.integers(1, (1 << min(width, 30)) - 1))
    flag = p.fresh_name(module, "dbg_match")

    condition = p.binop(
        "||",
        p.eq(p.ident(name), p.num(magic, width, base="h")),
        p.eq(p.ident(name), p.num(alt, width, base="h")),
    )
    _add_output_port(module, flag)
    module.items.append(p.assign(p.ident(flag), condition))
    return True


INSTRUMENTATION_BUILDERS: Dict[str, Callable[[ast.Module, np.random.Generator], bool]] = {
    "watchdog": add_watchdog_timer,
    "event_counter": add_event_counter,
    "status_decoder": add_status_decoder,
}


def add_benign_instrumentation(
    source: str,
    rng: np.random.Generator,
    max_features: int = 2,
) -> str:
    """Add up to ``max_features`` random benign instrumentation blocks.

    Returns the re-emitted source; the design's label is unchanged (the
    instrumentation is not a Trojan — it only adds new status outputs).
    """
    if max_features <= 0:
        return source
    module = parse_module(source)
    kinds: List[str] = list(rng.permutation(sorted(INSTRUMENTATION_BUILDERS)))
    added = 0
    for kind in kinds:
        if added >= max_features:
            break
        if INSTRUMENTATION_BUILDERS[kind](module, rng):
            added += 1
    if added == 0:
        return source
    return emit_module(module) + "\n"
