"""Synthetic host-design generators.

Trust-Hub RTL Trojan benchmarks insert Trojans into a handful of host design
families (AES cores, the RS232/UART core, the PIC micro-controller, the
wb_conmax bus matrix, ...).  The generators below synthesise parameterised
Verilog designs of the same flavours so that the whole pipeline — parse,
extract both modalities, train, fuse — runs on a realistic population of
Trojan-free circuits without redistributing the licensed benchmarks.

Every generator takes a ``numpy`` random generator and draws widths, state
counts and constants from it, so repeated calls produce *different but
structurally related* designs, mimicking the variation across Trust-Hub
design versions.  All emitted code stays inside the Verilog subset accepted
by :mod:`repro.hdl.parser` (no memories, no generate blocks, no tasks).
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np


def _hex(value: int, width_bits: int) -> str:
    """A sized hex literal, e.g. ``8'h3c``."""
    return f"{width_bits}'h{value & ((1 << width_bits) - 1):x}"


def generate_crypto_core(rng: np.random.Generator, name: str = "crypto_core") -> str:
    """An AES-flavoured round-based cipher core.

    Structure: state/key registers, a byte substitution implemented as a
    case statement (S-box slice), a round counter, and a diffusion step built
    from XOR/rotate expressions.
    """
    width = int(rng.choice([16, 32, 64]))
    rounds = int(rng.integers(6, 14))
    sbox_bits = 4
    sbox = rng.permutation(1 << sbox_bits)
    round_const = int(rng.integers(1, 1 << sbox_bits))
    rot = int(rng.integers(1, max(2, width // 4)))

    sbox_cases = "\n".join(
        f"        {_hex(i, sbox_bits)}: sbox_out = {_hex(int(v), sbox_bits)};"
        for i, v in enumerate(sbox)
    )
    weak_key = int(rng.integers(1, (1 << min(width, 30)) - 1))
    return f"""
// Synthetic AES-style round cipher (host family: crypto)
module {name} (clk, rst, load, key_in, data_in, busy, weak_key, data_out);
  input clk;
  input rst;
  input load;
  input [{width - 1}:0] key_in;
  input [{width - 1}:0] data_in;
  output busy;
  output weak_key;
  output [{width - 1}:0] data_out;

  reg [{width - 1}:0] state_reg;
  reg [{width - 1}:0] key_reg;
  reg [4:0] round_cnt;
  reg running;
  reg [{sbox_bits - 1}:0] sbox_out;
  wire [{sbox_bits - 1}:0] sbox_in;
  wire [{width - 1}:0] mixed;
  wire [{width - 1}:0] key_mixed;
  wire round_done;

  assign sbox_in = state_reg[{sbox_bits - 1}:0];
  assign mixed = {{state_reg[{width - 1 - rot}:0], state_reg[{width - 1}:{width - rot}]}} ^ key_reg;
  assign key_mixed = {{key_reg[0], key_reg[{width - 1}:1]}} ^ {{{width - sbox_bits}'d0, sbox_out}};
  assign round_done = round_cnt == 5'd{rounds};
  assign busy = running;
  // Benign key-quality check: compares the full key against a known weak key.
  assign weak_key = (key_in == {_hex(weak_key, width)}) || (key_in == {width}'d0);
  assign data_out = running ? {width}'d0 : state_reg;

  always @(*)
    begin
      case (sbox_in)
{sbox_cases}
        default: sbox_out = {_hex(round_const, sbox_bits)};
      endcase
    end

  always @(posedge clk or posedge rst)
    begin
      if (rst)
        begin
          state_reg <= {width}'d0;
          key_reg <= {width}'d0;
          round_cnt <= 5'd0;
          running <= 1'b0;
        end
      else
        begin
          if (load)
            begin
              state_reg <= data_in;
              key_reg <= key_in;
              round_cnt <= 5'd0;
              running <= 1'b1;
            end
          else
            begin
              if (running)
                begin
                  state_reg <= mixed ^ {{{width - sbox_bits}'d0, sbox_out}};
                  key_reg <= key_mixed;
                  round_cnt <= round_cnt + 5'd1;
                  if (round_done)
                    running <= 1'b0;
                end
            end
        end
    end
endmodule
"""


def generate_uart(rng: np.random.Generator, name: str = "uart_core") -> str:
    """An RS232-flavoured UART transmitter/receiver with a baud generator."""
    data_bits = int(rng.choice([7, 8, 9]))
    divider = int(rng.integers(20, 200))
    div_bits = max(4, int(np.ceil(np.log2(divider + 1))))
    idle, start, shift, stop = 0, 1, 2, 3
    sync_byte = int(rng.integers(1, (1 << data_bits) - 1))

    return f"""
// Synthetic RS232-style UART core (host family: uart)
module {name} (clk, rst, tx_start, tx_data, rx, tx, tx_busy, rx_data, rx_valid, sync_seen);
  input clk;
  input rst;
  input tx_start;
  input [{data_bits - 1}:0] tx_data;
  input rx;
  output tx;
  output tx_busy;
  output [{data_bits - 1}:0] rx_data;
  output rx_valid;
  output sync_seen;

  reg [{div_bits - 1}:0] baud_cnt;
  wire baud_tick;
  reg [1:0] tx_state;
  reg [{data_bits - 1}:0] tx_shift;
  reg [3:0] tx_bit_cnt;
  reg tx_out;
  reg [1:0] rx_state;
  reg [{data_bits - 1}:0] rx_shift;
  reg [3:0] rx_bit_cnt;
  reg rx_done;

  assign baud_tick = baud_cnt == {div_bits}'d{divider};
  assign tx = tx_busy ? tx_out : 1'b1;
  assign tx_busy = tx_state != 2'd{idle};
  assign rx_data = rx_shift;
  assign rx_valid = rx_done;
  // Benign framing helper: flags reception of the protocol sync byte.
  assign sync_seen = rx_done && (rx_shift == {_hex(sync_byte, data_bits)});

  always @(posedge clk or posedge rst)
    begin
      if (rst)
        baud_cnt <= {div_bits}'d0;
      else
        begin
          if (baud_tick)
            baud_cnt <= {div_bits}'d0;
          else
            baud_cnt <= baud_cnt + {div_bits}'d1;
        end
    end

  always @(posedge clk or posedge rst)
    begin
      if (rst)
        begin
          tx_state <= 2'd{idle};
          tx_shift <= {data_bits}'d0;
          tx_bit_cnt <= 4'd0;
          tx_out <= 1'b1;
        end
      else
        begin
          case (tx_state)
            2'd{idle}:
              begin
                tx_out <= 1'b1;
                if (tx_start)
                  begin
                    tx_shift <= tx_data;
                    tx_bit_cnt <= 4'd0;
                    tx_state <= 2'd{start};
                  end
              end
            2'd{start}:
              begin
                if (baud_tick)
                  begin
                    tx_out <= 1'b0;
                    tx_state <= 2'd{shift};
                  end
              end
            2'd{shift}:
              begin
                if (baud_tick)
                  begin
                    tx_out <= tx_shift[0];
                    tx_shift <= {{1'b0, tx_shift[{data_bits - 1}:1]}};
                    tx_bit_cnt <= tx_bit_cnt + 4'd1;
                    if (tx_bit_cnt == 4'd{data_bits - 1})
                      tx_state <= 2'd{stop};
                  end
              end
            default:
              begin
                if (baud_tick)
                  begin
                    tx_out <= 1'b1;
                    tx_state <= 2'd{idle};
                  end
              end
          endcase
        end
    end

  always @(posedge clk or posedge rst)
    begin
      if (rst)
        begin
          rx_state <= 2'd{idle};
          rx_shift <= {data_bits}'d0;
          rx_bit_cnt <= 4'd0;
          rx_done <= 1'b0;
        end
      else
        begin
          rx_done <= 1'b0;
          case (rx_state)
            2'd{idle}:
              begin
                if (!rx)
                  rx_state <= 2'd{start};
              end
            2'd{start}:
              begin
                if (baud_tick)
                  begin
                    rx_bit_cnt <= 4'd0;
                    rx_state <= 2'd{shift};
                  end
              end
            2'd{shift}:
              begin
                if (baud_tick)
                  begin
                    rx_shift <= {{rx, rx_shift[{data_bits - 1}:1]}};
                    rx_bit_cnt <= rx_bit_cnt + 4'd1;
                    if (rx_bit_cnt == 4'd{data_bits - 1})
                      rx_state <= 2'd{stop};
                  end
              end
            default:
              begin
                if (baud_tick)
                  begin
                    rx_done <= 1'b1;
                    rx_state <= 2'd{idle};
                  end
              end
          endcase
        end
    end
endmodule
"""


def generate_micro_controller(rng: np.random.Generator, name: str = "mcu_core") -> str:
    """A PIC-flavoured accumulator machine: fetch register, opcode decode,
    tiny ALU, program counter and a status flag."""
    data_width = int(rng.choice([8, 16]))
    pc_width = int(rng.choice([8, 10, 12]))
    opcodes = ["ADD", "SUB", "AND", "OR", "XOR", "LOAD", "STORE", "JMP"]
    n_ops = int(rng.integers(5, len(opcodes) + 1))

    alu_cases: List[str] = []
    for code in range(n_ops):
        op = opcodes[code]
        if op == "ADD":
            expr = "acc + operand"
        elif op == "SUB":
            expr = "acc - operand"
        elif op == "AND":
            expr = "acc & operand"
        elif op == "OR":
            expr = "acc | operand"
        elif op == "XOR":
            expr = "acc ^ operand"
        elif op == "LOAD":
            expr = "operand"
        elif op == "STORE":
            expr = "acc"
        else:
            expr = "acc"
        alu_cases.append(f"        4'd{code}: alu_out = {expr};")
    alu_body = "\n".join(alu_cases)

    halt_code = int(rng.integers(1, (1 << (data_width + 4)) - 1))
    return f"""
// Synthetic PIC-style accumulator micro-controller (host family: mcu)
module {name} (clk, rst, instr, mem_data, pc_out, acc_out, mem_write, status_z, halted);
  input clk;
  input rst;
  input [{data_width + 3}:0] instr;
  input [{data_width - 1}:0] mem_data;
  output [{pc_width - 1}:0] pc_out;
  output [{data_width - 1}:0] acc_out;
  output mem_write;
  output status_z;
  output halted;

  reg [{pc_width - 1}:0] pc;
  reg [{data_width - 1}:0] acc;
  reg zero_flag;
  reg [{data_width - 1}:0] alu_out;
  wire [3:0] opcode;
  wire [{data_width - 1}:0] operand;
  wire is_jump;
  wire is_store;

  assign opcode = instr[{data_width + 3}:{data_width}];
  assign operand = instr[{data_width - 1}:0];
  assign is_jump = opcode == 4'd7;
  assign is_store = opcode == 4'd6;
  assign pc_out = pc;
  assign acc_out = is_store ? mem_data : acc;
  assign mem_write = is_store;
  assign status_z = zero_flag;
  // Benign architectural feature: the documented HALT encoding stops the core.
  assign halted = instr == {_hex(halt_code, data_width + 4)};

  always @(*)
    begin
      case (opcode)
{alu_body}
        default: alu_out = mem_data;
      endcase
    end

  always @(posedge clk or posedge rst)
    begin
      if (rst)
        begin
          pc <= {pc_width}'d0;
          acc <= {data_width}'d0;
          zero_flag <= 1'b0;
        end
      else
        begin
          if (is_jump)
            pc <= operand[{pc_width - 1}:0];
          else
            pc <= pc + {pc_width}'d1;
          if (!is_store)
            acc <= alu_out;
          zero_flag <= alu_out == {data_width}'d0;
        end
    end
endmodule
"""


def generate_bus_arbiter(rng: np.random.Generator, name: str = "bus_bridge") -> str:
    """A wb_conmax-flavoured bus bridge: priority arbitration over N masters,
    address window decoding and data muxing."""
    n_masters = int(rng.integers(2, 5))
    addr_width = int(rng.choice([8, 12, 16]))
    data_width = int(rng.choice([8, 16, 32]))
    window = int(rng.integers(1, 1 << 3))

    master_inputs = "\n".join(
        f"  input [{data_width - 1}:0] m{i}_data;\n  input m{i}_req;" for i in range(n_masters)
    )
    grant_chain = []
    for i in range(n_masters):
        conditions = " && ".join([f"!m{j}_req" for j in range(i)] + [f"m{i}_req"])
        grant_chain.append(
            f"  assign grant[{i}] = {conditions};" if i else f"  assign grant[0] = m0_req;"
        )
    grants = "\n".join(grant_chain)
    mux_terms = " | ".join(
        f"({{{data_width}{{grant[{i}]}}}} & m{i}_data)" for i in range(n_masters)
    )

    return f"""
// Synthetic wb_conmax-style bus bridge (host family: bus)
module {name} (clk, rst, addr, {', '.join(f'm{i}_data, m{i}_req' for i in range(n_masters))}, sel_out, bus_data, bus_valid, err);
  input clk;
  input rst;
  input [{addr_width - 1}:0] addr;
{master_inputs}
  output [{n_masters - 1}:0] sel_out;
  output [{data_width - 1}:0] bus_data;
  output bus_valid;
  output err;

  wire [{n_masters - 1}:0] grant;
  reg [{n_masters - 1}:0] grant_reg;
  reg [{data_width - 1}:0] data_reg;
  reg valid_reg;
  wire window_hit;
  wire any_req;

{grants}
  assign any_req = {' || '.join(f'm{i}_req' for i in range(n_masters))};
  assign window_hit = addr[{addr_width - 1}:{addr_width - 3}] == 3'd{window & 7};
  assign sel_out = grant_reg;
  assign bus_data = valid_reg ? data_reg : {data_width}'d0;
  assign bus_valid = valid_reg;
  // Benign protection: the boot ROM window and the null address always fault.
  assign err = (any_req && !window_hit) || (addr == {_hex((1 << addr_width) - 1, addr_width)});

  always @(posedge clk or posedge rst)
    begin
      if (rst)
        begin
          grant_reg <= {n_masters}'d0;
          data_reg <= {data_width}'d0;
          valid_reg <= 1'b0;
        end
      else
        begin
          grant_reg <= grant;
          valid_reg <= any_req && window_hit;
          data_reg <= {mux_terms};
        end
    end
endmodule
"""


def generate_dsp_filter(rng: np.random.Generator, name: str = "fir_filter") -> str:
    """A FIR-flavoured DSP pipeline: tap shift registers, constant
    coefficients and an accumulating adder tree."""
    n_taps = int(rng.integers(3, 7))
    width = int(rng.choice([8, 12, 16]))
    acc_width = width + 4
    coeffs = [int(rng.integers(1, 1 << (width // 2))) for _ in range(n_taps)]

    tap_decls = "\n".join(f"  reg [{width - 1}:0] tap{i};" for i in range(n_taps))
    tap_shift = "\n".join(
        f"          tap{i} <= tap{i - 1};" if i else "          tap0 <= sample_in;"
        for i in range(n_taps)
    )
    tap_reset = "\n".join(f"          tap{i} <= {width}'d0;" for i in range(n_taps))
    products = " + ".join(
        f"(tap{i} * {_hex(coeffs[i], width)})" for i in range(n_taps)
    )

    return f"""
// Synthetic FIR-style DSP filter (host family: dsp)
module {name} (clk, rst, sample_valid, sample_in, filtered, overflow);
  input clk;
  input rst;
  input sample_valid;
  input [{width - 1}:0] sample_in;
  output [{acc_width - 1}:0] filtered;
  output overflow;

{tap_decls}
  reg [{acc_width - 1}:0] acc;
  wire [{acc_width - 1}:0] sum;
  wire saturate;

  assign sum = {products};
  // Benign saturation: clamp the accumulator output instead of wrapping.
  assign saturate = acc > {_hex((1 << (acc_width - 1)) - 1, acc_width)};
  assign filtered = saturate ? {_hex((1 << (acc_width - 1)) - 1, acc_width)} : acc;
  assign overflow = acc[{acc_width - 1}];

  always @(posedge clk or posedge rst)
    begin
      if (rst)
        begin
{tap_reset}
          acc <= {acc_width}'d0;
        end
      else
        begin
          if (sample_valid)
            begin
{tap_shift}
              acc <= sum;
            end
        end
    end
endmodule
"""


#: Host family registry used by the benchmark suite builder.
HOST_FAMILIES: Dict[str, Callable[[np.random.Generator, str], str]] = {
    "crypto": generate_crypto_core,
    "uart": generate_uart,
    "mcu": generate_micro_controller,
    "bus": generate_bus_arbiter,
    "dsp": generate_dsp_filter,
}


def generate_host(
    family: str, rng: np.random.Generator, name: str = "host"
) -> str:
    """Generate one host design of the requested family."""
    try:
        generator = HOST_FAMILIES[family]
    except KeyError as exc:
        known = ", ".join(sorted(HOST_FAMILIES))
        raise ValueError(f"Unknown host family {family!r}; known: {known}") from exc
    return generator(rng, name)
