"""Trojan insertion engine.

Given a Trojan-free host design (Verilog source), :func:`insert_trojan`
parses it, splices in a trigger (:mod:`repro.trojan.triggers`), applies a
payload (:mod:`repro.trojan.payloads`) and re-emits Verilog source.  The
result is a Trojan-infected variant of the host that the downstream feature
extractors treat exactly like any other design — there is no side channel
telling the detector where the Trojan is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..hdl import ast_nodes as ast
from ..hdl.emitter import emit_module
from ..hdl.parser import parse_module
from .payloads import PAYLOAD_BUILDERS, PayloadEffect, PayloadError, apply_payload
from .triggers import TRIGGER_BUILDERS, TriggerError, TriggerLogic, build_trigger


@dataclass
class TrojanSpec:
    """What was inserted: trigger and payload kinds plus their descriptions."""

    trigger_kind: str
    payload_kind: str
    trigger_description: str
    payload_description: str
    payload_target: str

    @property
    def label(self) -> str:
        return f"{self.trigger_kind}+{self.payload_kind}"


@dataclass
class InsertionResult:
    """The infected source plus a record of what was inserted."""

    source: str
    spec: TrojanSpec
    module_name: str


class InsertionError(ValueError):
    """Raised when no trigger/payload combination fits the host design."""


def _insertion_point(module: ast.Module) -> int:
    """Index in ``module.items`` after the last declaration.

    Trojan declarations are placed with the host's own declarations and the
    Trojan logic after them, so the infected source keeps the conventional
    declarations-then-logic layout and offers no positional give-away.
    """
    last_decl = 0
    for i, item in enumerate(module.items):
        if isinstance(
            item, (ast.PortDeclaration, ast.NetDeclaration, ast.ParameterDeclaration)
        ):
            last_decl = i + 1
    return last_decl


def _splice(module: ast.Module, trigger: TriggerLogic) -> None:
    insert_at = _insertion_point(module)
    module.items[insert_at:insert_at] = trigger.declarations
    module.items.extend(trigger.logic)


def insert_trojan(
    source: str,
    rng: np.random.Generator,
    trigger_kind: Optional[str] = None,
    payload_kind: Optional[str] = None,
    module_name: Optional[str] = None,
) -> InsertionResult:
    """Insert a Trojan into ``source`` and return the infected design.

    When ``trigger_kind``/``payload_kind`` are omitted a random viable
    combination is chosen.  Raises :class:`InsertionError` when no
    combination applies (which for the built-in host families never
    happens, but matters for user-supplied designs).
    """
    trigger_kinds = [trigger_kind] if trigger_kind else list(TRIGGER_BUILDERS)
    payload_kinds = [payload_kind] if payload_kind else list(PAYLOAD_BUILDERS)
    # Shuffle so the random choice is uniform over viable combinations.
    trigger_kinds = list(rng.permutation(trigger_kinds))
    payload_kinds = list(rng.permutation(payload_kinds))

    errors: List[str] = []
    for t_kind in trigger_kinds:
        for p_kind in payload_kinds:
            module = parse_module(source, module_name)
            try:
                trigger = build_trigger(t_kind, module, rng)
                effect = apply_payload(p_kind, module, trigger.trigger_wire, rng)
            except (TriggerError, PayloadError) as exc:
                errors.append(f"{t_kind}+{p_kind}: {exc}")
                continue
            _splice(module, trigger)
            spec = TrojanSpec(
                trigger_kind=t_kind,
                payload_kind=p_kind,
                trigger_description=trigger.description,
                payload_description=effect.description,
                payload_target=effect.target,
            )
            return InsertionResult(
                source=emit_module(module) + "\n",
                spec=spec,
                module_name=module.name,
            )
    raise InsertionError(
        "No viable trigger/payload combination for this design: " + "; ".join(errors)
    )


def available_trojan_kinds() -> Tuple[List[str], List[str]]:
    """``(trigger_kinds, payload_kinds)`` supported by the insertion engine."""
    return sorted(TRIGGER_BUILDERS), sorted(PAYLOAD_BUILDERS)
