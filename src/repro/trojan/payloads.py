"""Trojan payload application.

A payload is the malicious effect a Trojan has once its trigger fires.  Each
payload builder *mutates the host module's AST in place*, guarded by the
trigger wire produced in :mod:`repro.trojan.triggers`, and returns a
:class:`PayloadEffect` describing the modification.  The three families
mirror the dominant payload styles of the Trust-Hub RTL benchmarks:

* ``leak``    -- information leakage: an internal (secret-carrying) register
  is multiplexed onto an existing output when the trigger fires.
* ``corrupt`` -- functional corruption: a state-holding register update is
  bit-flipped when the trigger fires.
* ``dos``     -- denial of service: an output or state register is forced to
  zero when the trigger fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..hdl import ast_nodes as ast
from . import primitives as p


@dataclass
class PayloadEffect:
    """Description of the applied payload (for dataset metadata)."""

    kind: str
    target: str
    description: str = ""


class PayloadError(ValueError):
    """Raised when a payload cannot be applied to the given host module."""


def _target_name(node: ast.Node) -> str:
    base = node
    while isinstance(base, (ast.BitSelect, ast.PartSelect)):
        base = base.base
    if isinstance(base, ast.Identifier):
        return base.name
    return "<expr>"


def _internal_registers(module: ast.Module) -> List[str]:
    """Multi-bit internal ``reg`` signals, the usual leak sources (keys,
    state registers, shift registers)."""
    names: List[str] = []
    for decl in module.net_declarations():
        if decl.net_type == "reg" and decl.width() >= 4:
            names.extend(decl.names)
    return names


def _choose_output_assign(
    module: ast.Module, rng: np.random.Generator
) -> Optional[ast.ContinuousAssign]:
    assigns = p.output_continuous_assigns(module)
    if not assigns:
        return None
    return assigns[int(rng.integers(0, len(assigns)))]


def _choose_nonblocking(
    module: ast.Module, rng: np.random.Generator
) -> Optional[ast.NonBlockingAssign]:
    assigns = p.nonblocking_assigns(module)
    # Prefer multi-bit targets so the corruption is meaningful.
    wide = [a for a in assigns if p.signal_width(module, _target_name(a.target)) >= 2]
    pool = wide or assigns
    if not pool:
        return None
    return pool[int(rng.integers(0, len(pool)))]


def apply_leak_payload(
    module: ast.Module, trigger_wire: str, rng: np.random.Generator
) -> PayloadEffect:
    """Leak an internal register through an existing output when triggered."""
    assign = _choose_output_assign(module, rng)
    if assign is None:
        raise PayloadError("leak payload needs a continuous assign driving an output")
    secrets = _internal_registers(module)
    if not secrets:
        raise PayloadError("leak payload needs an internal multi-bit register to leak")
    secret = secrets[int(rng.integers(0, len(secrets)))]
    target = _target_name(assign.target)
    target_width = p.signal_width(module, target)
    secret_width = p.signal_width(module, secret)
    leak_expr: ast.Node = p.ident(secret)
    if secret_width > target_width and target_width >= 1:
        leak_expr = ast.PartSelect(
            base=p.ident(secret), msb=p.num(target_width - 1), lsb=p.num(0)
        )
    original = assign.value
    assign.value = p.ternary(
        p.ident(trigger_wire), p.binop("^", original, leak_expr), original
    )
    return PayloadEffect(
        kind="leak",
        target=target,
        description=f"leaks register {secret} onto output {target} when triggered",
    )


def apply_corrupt_payload(
    module: ast.Module, trigger_wire: str, rng: np.random.Generator
) -> PayloadEffect:
    """Flip the bits of a register update when triggered."""
    assign = _choose_nonblocking(module, rng)
    if assign is None:
        raise PayloadError("corrupt payload needs a non-blocking assignment to subvert")
    target = _target_name(assign.target)
    original = assign.value
    assign.value = p.ternary(
        p.ident(trigger_wire), ast.UnaryOp(op="~", operand=original), original
    )
    return PayloadEffect(
        kind="corrupt",
        target=target,
        description=f"inverts the update of register {target} when triggered",
    )


def apply_dos_payload(
    module: ast.Module, trigger_wire: str, rng: np.random.Generator
) -> PayloadEffect:
    """Force an output (or register update) to zero when triggered."""
    assign = _choose_output_assign(module, rng)
    if assign is not None:
        target = _target_name(assign.target)
        width = p.signal_width(module, target)
        original = assign.value
        assign.value = p.ternary(p.ident(trigger_wire), p.num(0, width), original)
        return PayloadEffect(
            kind="dos",
            target=target,
            description=f"forces output {target} to zero when triggered",
        )
    nb = _choose_nonblocking(module, rng)
    if nb is None:
        raise PayloadError("dos payload needs an output assign or register update")
    target = _target_name(nb.target)
    width = p.signal_width(module, target)
    original = nb.value
    nb.value = p.ternary(p.ident(trigger_wire), p.num(0, width), original)
    return PayloadEffect(
        kind="dos",
        target=target,
        description=f"freezes register {target} at zero when triggered",
    )


PAYLOAD_BUILDERS: Dict[
    str, Callable[[ast.Module, str, np.random.Generator], PayloadEffect]
] = {
    "leak": apply_leak_payload,
    "corrupt": apply_corrupt_payload,
    "dos": apply_dos_payload,
}


def apply_payload(
    kind: str, module: ast.Module, trigger_wire: str, rng: np.random.Generator
) -> PayloadEffect:
    """Apply a payload of the requested kind, guarded by ``trigger_wire``."""
    try:
        builder = PAYLOAD_BUILDERS[kind]
    except KeyError as exc:
        known = ", ".join(sorted(PAYLOAD_BUILDERS))
        raise ValueError(f"Unknown payload kind {kind!r}; known: {known}") from exc
    return builder(module, trigger_wire, rng)
