"""AST-building primitives and module-inspection helpers.

The Trojan insertion engine (and a few host generators) build Verilog AST
fragments programmatically.  These helpers keep that code compact and
readable: ``ident("clk")`` instead of ``ast.Identifier(name="clk")`` and so
on.  The inspection helpers answer the questions an attacker inserting a
Trojan would ask about a host design: where is the clock, which inputs are
wide enough to hide a comparator trigger on, which assignments drive outputs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..hdl import ast_nodes as ast
from ..hdl.visitor import collect, walk


# ---------------------------------------------------------------------------
# Expression / statement builders
# ---------------------------------------------------------------------------


def ident(name: str) -> ast.Identifier:
    """An identifier reference."""
    return ast.Identifier(name=name)


def num(value: int, width: Optional[int] = None, base: str = "d") -> ast.Number:
    """A numeric literal; with ``width`` the sized Verilog form is emitted."""
    if width is None:
        text = str(value)
    else:
        if base == "h":
            digits = format(value, "x")
        elif base == "b":
            digits = format(value, "b")
        else:
            digits = str(value)
        text = f"{width}'{base}{digits}"
    return ast.Number(text=text, value=value, width=width)


def binop(op: str, left: ast.Node, right: ast.Node) -> ast.BinaryOp:
    return ast.BinaryOp(op=op, left=left, right=right)


def eq(left: ast.Node, right: ast.Node) -> ast.BinaryOp:
    return binop("==", left, right)


def land(left: ast.Node, right: ast.Node) -> ast.BinaryOp:
    return binop("&&", left, right)


def ternary(cond: ast.Node, if_true: ast.Node, if_false: ast.Node) -> ast.Ternary:
    return ast.Ternary(condition=cond, if_true=if_true, if_false=if_false)


def bit_range(msb: int, lsb: int = 0) -> ast.Range:
    return ast.Range(msb=num(msb), lsb=num(lsb))


def wire_decl(name: str, width: int = 1) -> ast.NetDeclaration:
    rng = bit_range(width - 1) if width > 1 else None
    return ast.NetDeclaration(net_type="wire", names=[name], range=rng)


def reg_decl(name: str, width: int = 1) -> ast.NetDeclaration:
    rng = bit_range(width - 1) if width > 1 else None
    return ast.NetDeclaration(net_type="reg", names=[name], range=rng)


def assign(target: ast.Node, value: ast.Node) -> ast.ContinuousAssign:
    return ast.ContinuousAssign(target=target, value=value)


def nonblocking(target: ast.Node, value: ast.Node) -> ast.NonBlockingAssign:
    return ast.NonBlockingAssign(target=target, value=value)


def blocking(target: ast.Node, value: ast.Node) -> ast.BlockingAssign:
    return ast.BlockingAssign(target=target, value=value)


def block(statements: Sequence[ast.Node]) -> ast.Block:
    return ast.Block(statements=list(statements))


def if_stmt(
    condition: ast.Node, then_branch: ast.Node, else_branch: Optional[ast.Node] = None
) -> ast.If:
    return ast.If(condition=condition, then_branch=then_branch, else_branch=else_branch)


def clocked_always(
    body: ast.Node, clock: str = "clk", reset: Optional[str] = None, reset_edge: str = "posedge"
) -> ast.Always:
    """An ``always @(posedge clk [or <edge> reset])`` block."""
    sensitivity = [ast.SensitivityItem(signal=ident(clock), edge="posedge")]
    if reset is not None:
        sensitivity.append(ast.SensitivityItem(signal=ident(reset), edge=reset_edge))
    return ast.Always(sensitivity=sensitivity, body=body)


def combinational_always(body: ast.Node) -> ast.Always:
    """An ``always @(*)`` block."""
    return ast.Always(sensitivity=[], body=body, is_star=True)


# ---------------------------------------------------------------------------
# Module inspection
# ---------------------------------------------------------------------------


def declared_names(module: ast.Module) -> List[str]:
    """Every port, net and parameter name declared in the module."""
    names: List[str] = []
    for item in module.items:
        if isinstance(item, (ast.PortDeclaration, ast.NetDeclaration)):
            names.extend(item.names)
        elif isinstance(item, ast.ParameterDeclaration):
            names.append(item.name)
    return names


def fresh_name(module: ast.Module, base: str) -> str:
    """A signal name derived from ``base`` that does not clash with existing ones."""
    existing = set(declared_names(module))
    if base not in existing:
        return base
    suffix = 0
    while f"{base}_{suffix}" in existing:
        suffix += 1
    return f"{base}_{suffix}"


def input_ports(module: ast.Module) -> List[Tuple[str, int]]:
    """``(name, width)`` pairs for every input port."""
    ports: List[Tuple[str, int]] = []
    for decl in module.port_declarations():
        if decl.direction == "input":
            for name in decl.names:
                ports.append((name, decl.width()))
    return ports


def output_ports(module: ast.Module) -> List[Tuple[str, int]]:
    """``(name, width)`` pairs for every output port."""
    ports: List[Tuple[str, int]] = []
    for decl in module.port_declarations():
        if decl.direction == "output":
            for name in decl.names:
                ports.append((name, decl.width()))
    return ports


def find_clock(module: ast.Module) -> Optional[str]:
    """Best-effort clock signal name (an input named like a clock, or the
    signal used with ``posedge`` in sequential always blocks)."""
    for name, _ in input_ports(module):
        if name in ("clk", "clock", "clk_i", "wb_clk_i"):
            return name
    for always in module.always_blocks():
        for item in always.sensitivity:
            if item.edge == "posedge" and isinstance(item.signal, ast.Identifier):
                return item.signal.name
    return None


def find_reset(module: ast.Module) -> Optional[str]:
    """Best-effort reset signal name."""
    candidates = ("rst", "reset", "rst_n", "resetn", "rst_i", "wb_rst_i")
    for name, _ in input_ports(module):
        if name in candidates:
            return name
    return None


def data_inputs(module: ast.Module, min_width: int = 2) -> List[Tuple[str, int]]:
    """Input ports wide enough to host a comparator trigger (excludes clock
    and reset)."""
    skip = {find_clock(module), find_reset(module)}
    return [
        (name, width)
        for name, width in input_ports(module)
        if name not in skip and width >= min_width
    ]


def output_continuous_assigns(module: ast.Module) -> List[ast.ContinuousAssign]:
    """Continuous assigns whose target drives an output port."""
    outputs = {name for name, _ in output_ports(module)}
    result = []
    for item in module.continuous_assigns():
        target = item.target
        base = target
        while isinstance(base, (ast.BitSelect, ast.PartSelect)):
            base = base.base
        if isinstance(base, ast.Identifier) and base.name in outputs:
            result.append(item)
    return result


def nonblocking_assigns(module: ast.Module) -> List[ast.NonBlockingAssign]:
    """All non-blocking assignments in the module's always blocks."""
    result: List[ast.NonBlockingAssign] = []
    for always in module.always_blocks():
        result.extend(
            node for node in walk(always.body) if isinstance(node, ast.NonBlockingAssign)
        )
    return result


def signal_width(module: ast.Module, name: str) -> int:
    """Declared width of a signal (1 when not found or unranged)."""
    for decl in module.port_declarations():
        if name in decl.names:
            return decl.width()
    for decl in module.net_declarations():
        if name in decl.names:
            return decl.width()
    return 1


def referenced_signals(module: ast.Module) -> List[str]:
    """All identifier names referenced anywhere in the module body."""
    return [node.name for node in collect(module, ast.Identifier)]
