"""Trojan trigger generators.

A trigger is the stealthy activation condition of a hardware Trojan.  Each
builder returns a :class:`TriggerLogic`: the new declarations and logic items
to splice into the host module plus the name of the 1-bit wire that goes high
when the Trojan activates.  The three families implemented here mirror the
dominant trigger styles in the Trust-Hub RTL benchmarks:

* ``counter``    -- a time bomb: a free-running counter that fires at a rare
  count value (e.g. AES-T1000 style).
* ``comparator`` -- a cheat code: fires when data inputs carry specific rare
  values (e.g. RS232-T300 style).
* ``sequence``   -- a state chain: fires only after a specific *sequence* of
  rare input values has been observed (multi-stage trigger).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..hdl import ast_nodes as ast
from . import primitives as p


@dataclass
class TriggerLogic:
    """The AST items implementing a trigger and its activation wire."""

    kind: str
    trigger_wire: str
    declarations: List[ast.Node] = field(default_factory=list)
    logic: List[ast.Node] = field(default_factory=list)
    description: str = ""

    @property
    def items(self) -> List[ast.Node]:
        return self.declarations + self.logic


class TriggerError(ValueError):
    """Raised when a trigger cannot be built for the given host module."""


def _require_clock(module: ast.Module, kind: str) -> str:
    clock = p.find_clock(module)
    if clock is None:
        raise TriggerError(f"{kind} trigger requires a clocked host module")
    return clock


def build_counter_trigger(
    module: ast.Module, rng: np.random.Generator
) -> TriggerLogic:
    """Time-bomb trigger: counts clock cycles and fires at a rare value."""
    clock = _require_clock(module, "counter")
    reset = p.find_reset(module)
    width = int(rng.integers(12, 24))
    fire_value = int(rng.integers((1 << (width - 1)), (1 << width) - 1))
    cnt = p.fresh_name(module, "troj_cnt")
    trig = p.fresh_name(module, "troj_trig")

    increment = p.nonblocking(p.ident(cnt), p.binop("+", p.ident(cnt), p.num(1, width)))
    if reset is not None:
        body = p.block(
            [
                p.if_stmt(
                    p.ident(reset),
                    p.block([p.nonblocking(p.ident(cnt), p.num(0, width))]),
                    p.block([increment]),
                )
            ]
        )
        always = p.clocked_always(body, clock=clock, reset=reset)
    else:
        always = p.clocked_always(p.block([increment]), clock=clock)

    compare = p.eq(p.ident(cnt), p.num(fire_value, width, base="h"))
    return TriggerLogic(
        kind="counter",
        trigger_wire=trig,
        declarations=[p.reg_decl(cnt, width), p.wire_decl(trig)],
        logic=[always, p.assign(p.ident(trig), compare)],
        description=f"time-bomb counter, fires at {fire_value:#x} of {width} bits",
    )


def build_comparator_trigger(
    module: ast.Module, rng: np.random.Generator
) -> TriggerLogic:
    """Cheat-code trigger: fires when data inputs equal rare constants."""
    candidates = p.data_inputs(module, min_width=2)
    if not candidates:
        raise TriggerError("comparator trigger needs at least one multi-bit data input")
    n_terms = min(len(candidates), int(rng.integers(1, 3)))
    chosen_idx = rng.choice(len(candidates), size=n_terms, replace=False)
    trig = p.fresh_name(module, "troj_trig")

    condition: Optional[ast.Node] = None
    picked = []
    for idx in chosen_idx:
        name, width = candidates[int(idx)]
        value = int(rng.integers(1, (1 << min(width, 30)) - 1))
        term = p.eq(p.ident(name), p.num(value, width, base="h"))
        condition = term if condition is None else p.land(condition, term)
        picked.append(name)

    assert condition is not None
    return TriggerLogic(
        kind="comparator",
        trigger_wire=trig,
        declarations=[p.wire_decl(trig)],
        logic=[p.assign(p.ident(trig), condition)],
        description=f"cheat-code comparator on inputs {', '.join(picked)}",
    )


def build_sequence_trigger(
    module: ast.Module, rng: np.random.Generator
) -> TriggerLogic:
    """State-chain trigger: advances through hidden states on rare input
    values and fires only when the final state is reached."""
    clock = _require_clock(module, "sequence")
    reset = p.find_reset(module)
    candidates = p.data_inputs(module, min_width=2)
    if not candidates:
        raise TriggerError("sequence trigger needs at least one multi-bit data input")
    name, width = candidates[int(rng.integers(0, len(candidates)))]
    n_stages = int(rng.integers(2, 4))
    keys = [int(rng.integers(1, (1 << min(width, 30)) - 1)) for _ in range(n_stages)]
    state = p.fresh_name(module, "troj_state")
    trig = p.fresh_name(module, "troj_trig")
    state_width = 2

    # Build the nested if chain: in state i, seeing keys[i] advances to i+1.
    stages: List[ast.Node] = []
    for i, key in enumerate(keys):
        advance = p.nonblocking(p.ident(state), p.num(i + 1, state_width))
        cond = p.land(
            p.eq(p.ident(state), p.num(i, state_width)),
            p.eq(p.ident(name), p.num(key, width, base="h")),
        )
        stages.append(p.if_stmt(cond, p.block([advance])))
    chain = p.block(stages)

    if reset is not None:
        body = p.block(
            [
                p.if_stmt(
                    p.ident(reset),
                    p.block([p.nonblocking(p.ident(state), p.num(0, state_width))]),
                    chain,
                )
            ]
        )
        always = p.clocked_always(body, clock=clock, reset=reset)
    else:
        always = p.clocked_always(chain, clock=clock)

    fire = p.eq(p.ident(state), p.num(n_stages, state_width))
    return TriggerLogic(
        kind="sequence",
        trigger_wire=trig,
        declarations=[p.reg_decl(state, state_width), p.wire_decl(trig)],
        logic=[always, p.assign(p.ident(trig), fire)],
        description=f"{n_stages}-stage sequence trigger watching input {name}",
    )


TRIGGER_BUILDERS: Dict[str, Callable[[ast.Module, np.random.Generator], TriggerLogic]] = {
    "counter": build_counter_trigger,
    "comparator": build_comparator_trigger,
    "sequence": build_sequence_trigger,
}


def build_trigger(
    kind: str, module: ast.Module, rng: np.random.Generator
) -> TriggerLogic:
    """Build a trigger of the requested kind for ``module``."""
    try:
        builder = TRIGGER_BUILDERS[kind]
    except KeyError as exc:
        known = ", ".join(sorted(TRIGGER_BUILDERS))
        raise ValueError(f"Unknown trigger kind {kind!r}; known: {known}") from exc
    return builder(module, rng)
