"""Benchmark suite builder.

Builds a population of named RTL designs in the style of the Trust-Hub RTL
Trojan suites: a set of Trojan-free host designs (several variants per host
family, mimicking design revisions) plus a smaller, *imbalanced* set of
Trojan-infected variants (each a host with one inserted trigger/payload
combination).  Names follow the Trust-Hub convention ``<FAMILY>-T<number>``
for infected designs and ``<FAMILY>-free<number>`` for clean ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .hosts import HOST_FAMILIES, generate_host
from .insertion import InsertionResult, insert_trojan
from .instrumentation import add_benign_instrumentation

#: Class labels used across the library.
TROJAN_FREE = 0
TROJAN_INFECTED = 1

LABEL_NAMES = {TROJAN_FREE: "trojan_free", TROJAN_INFECTED: "trojan_infected"}


@dataclass
class Benchmark:
    """One named RTL design with its ground-truth label and metadata."""

    name: str
    family: str
    source: str
    label: int
    trigger_kind: Optional[str] = None
    payload_kind: Optional[str] = None
    description: str = ""

    @property
    def is_infected(self) -> bool:
        return self.label == TROJAN_INFECTED


@dataclass
class SuiteConfig:
    """Configuration of the synthetic benchmark suite.

    The defaults give the small, imbalanced population the paper starts
    from (tens of designs, roughly one third infected) before GAN
    amplification brings the usable dataset to ~500 points.
    """

    n_trojan_free: int = 40
    n_trojan_infected: int = 20
    families: List[str] = field(default_factory=lambda: sorted(HOST_FAMILIES))
    trigger_kinds: Optional[List[str]] = None
    payload_kinds: Optional[List[str]] = None
    #: Probability that a design (of either class) receives benign
    #: instrumentation (watchdogs, debug counters) that structurally
    #: resembles Trojan trigger logic.  This is the main difficulty knob.
    instrumentation_probability: float = 0.6
    #: Maximum number of benign instrumentation blocks per design.
    max_instrumentation: int = 2
    seed: int = 7

    def validate(self) -> None:
        if self.n_trojan_free <= 0 or self.n_trojan_infected <= 0:
            raise ValueError("suite must contain at least one design of each class")
        unknown = [f for f in self.families if f not in HOST_FAMILIES]
        if unknown:
            raise ValueError(f"unknown host families: {unknown}")
        if not 0.0 <= self.instrumentation_probability <= 1.0:
            raise ValueError("instrumentation_probability must be in [0, 1]")
        if self.max_instrumentation < 0:
            raise ValueError("max_instrumentation must be non-negative")


def _family_prefix(family: str) -> str:
    return {
        "crypto": "AES",
        "uart": "RS232",
        "mcu": "PIC",
        "bus": "WB",
        "dsp": "FIR",
    }.get(family, family.upper())


def build_suite(config: Optional[SuiteConfig] = None) -> List[Benchmark]:
    """Generate the full benchmark population described by ``config``."""
    config = config or SuiteConfig()
    config.validate()
    rng = np.random.default_rng(config.seed)
    benchmarks: List[Benchmark] = []

    def maybe_instrument(source: str) -> str:
        if rng.random() < config.instrumentation_probability:
            n_blocks = int(rng.integers(1, config.max_instrumentation + 1))
            return add_benign_instrumentation(source, rng, max_features=n_blocks)
        return source

    # Trojan-free designs: cycle through families, varying parameters.
    for i in range(config.n_trojan_free):
        family = config.families[i % len(config.families)]
        module_name = f"{family}_v{i}"
        source = maybe_instrument(generate_host(family, rng, name=module_name))
        benchmarks.append(
            Benchmark(
                name=f"{_family_prefix(family)}-free{i:03d}",
                family=family,
                source=source,
                label=TROJAN_FREE,
                description=f"clean {family} host variant {i}",
            )
        )

    # Trojan-infected designs: fresh host variant + one inserted Trojan each.
    trigger_kinds = config.trigger_kinds
    payload_kinds = config.payload_kinds
    for i in range(config.n_trojan_infected):
        family = config.families[i % len(config.families)]
        module_name = f"{family}_ti{i}"
        host_source = generate_host(family, rng, name=module_name)
        trigger_kind = (
            trigger_kinds[i % len(trigger_kinds)] if trigger_kinds else None
        )
        payload_kind = (
            payload_kinds[i % len(payload_kinds)] if payload_kinds else None
        )
        result: InsertionResult = insert_trojan(
            host_source, rng, trigger_kind=trigger_kind, payload_kind=payload_kind
        )
        infected_source = maybe_instrument(result.source)
        benchmarks.append(
            Benchmark(
                name=f"{_family_prefix(family)}-T{100 + i}",
                family=family,
                source=infected_source,
                label=TROJAN_INFECTED,
                trigger_kind=result.spec.trigger_kind,
                payload_kind=result.spec.payload_kind,
                description=(
                    f"{result.spec.trigger_description}; {result.spec.payload_description}"
                ),
            )
        )
    return benchmarks


def suite_summary(benchmarks: List[Benchmark]) -> Dict[str, int]:
    """Counts per class and per family, for quick reporting."""
    summary: Dict[str, int] = {
        "total": len(benchmarks),
        "trojan_free": sum(1 for b in benchmarks if not b.is_infected),
        "trojan_infected": sum(1 for b in benchmarks if b.is_infected),
    }
    for benchmark in benchmarks:
        key = f"family_{benchmark.family}"
        summary[key] = summary.get(key, 0) + 1
    return summary
