"""Synthetic Trust-Hub-style RTL Trojan benchmark substrate.

Generates parameterised Trojan-free host designs (crypto, UART, MCU, bus,
DSP families), inserts Trojans (trigger + payload) into copies of them, and
packages the resulting population as a labelled dataset with the imbalance
characteristic of real hardware-security data.
"""

from .dataset import TrojanDataset
from .hosts import HOST_FAMILIES, generate_host
from .insertion import (
    InsertionError,
    InsertionResult,
    TrojanSpec,
    available_trojan_kinds,
    insert_trojan,
)
from .instrumentation import INSTRUMENTATION_BUILDERS, add_benign_instrumentation
from .payloads import PAYLOAD_BUILDERS, PayloadEffect, PayloadError, apply_payload
from .suite import (
    LABEL_NAMES,
    TROJAN_FREE,
    TROJAN_INFECTED,
    Benchmark,
    SuiteConfig,
    build_suite,
    suite_summary,
)
from .triggers import TRIGGER_BUILDERS, TriggerError, TriggerLogic, build_trigger

__all__ = [
    "Benchmark",
    "HOST_FAMILIES",
    "INSTRUMENTATION_BUILDERS",
    "InsertionError",
    "InsertionResult",
    "LABEL_NAMES",
    "PAYLOAD_BUILDERS",
    "PayloadEffect",
    "PayloadError",
    "SuiteConfig",
    "TROJAN_FREE",
    "TROJAN_INFECTED",
    "TRIGGER_BUILDERS",
    "TriggerError",
    "TriggerLogic",
    "TrojanDataset",
    "TrojanSpec",
    "add_benign_instrumentation",
    "apply_payload",
    "available_trojan_kinds",
    "build_suite",
    "build_trigger",
    "generate_host",
    "insert_trojan",
    "suite_summary",
]
