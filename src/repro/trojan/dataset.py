"""Dataset container for RTL Trojan benchmarks.

:class:`TrojanDataset` wraps a list of :class:`repro.trojan.suite.Benchmark`
objects and provides the label array, stratified splitting and filtering
operations the experiments need, without committing to any particular
feature representation (the modalities are extracted later by
:mod:`repro.features`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .suite import Benchmark, SuiteConfig, build_suite, suite_summary


@dataclass
class TrojanDataset:
    """A labelled population of RTL designs."""

    benchmarks: List[Benchmark]

    # -- construction -----------------------------------------------------
    @classmethod
    def generate(cls, config: Optional[SuiteConfig] = None) -> "TrojanDataset":
        """Generate a synthetic Trust-Hub-style dataset (see ``SuiteConfig``)."""
        return cls(benchmarks=build_suite(config))

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.benchmarks)

    def __iter__(self) -> Iterator[Benchmark]:
        return iter(self.benchmarks)

    def __getitem__(self, index: int) -> Benchmark:
        return self.benchmarks[index]

    # -- views -------------------------------------------------------------
    @property
    def labels(self) -> np.ndarray:
        """Ground-truth labels (0 = Trojan-free, 1 = Trojan-infected)."""
        return np.asarray([b.label for b in self.benchmarks], dtype=int)

    @property
    def names(self) -> List[str]:
        return [b.name for b in self.benchmarks]

    @property
    def sources(self) -> List[str]:
        return [b.source for b in self.benchmarks]

    def infected(self) -> "TrojanDataset":
        return TrojanDataset([b for b in self.benchmarks if b.is_infected])

    def clean(self) -> "TrojanDataset":
        return TrojanDataset([b for b in self.benchmarks if not b.is_infected])

    def by_family(self, family: str) -> "TrojanDataset":
        return TrojanDataset([b for b in self.benchmarks if b.family == family])

    def subset(self, indices: Sequence[int]) -> "TrojanDataset":
        return TrojanDataset([self.benchmarks[i] for i in indices])

    def summary(self) -> dict:
        return suite_summary(self.benchmarks)

    # -- splitting -----------------------------------------------------------
    def stratified_split(
        self, test_fraction: float = 0.25, rng: Optional[np.random.Generator] = None
    ) -> Tuple["TrojanDataset", "TrojanDataset"]:
        """Split into train/test datasets preserving the class imbalance."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        rng = rng or np.random.default_rng()
        labels = self.labels
        train_idx: List[int] = []
        test_idx: List[int] = []
        for label in np.unique(labels):
            members = np.flatnonzero(labels == label)
            rng.shuffle(members)
            n_test = max(1, int(round(len(members) * test_fraction)))
            if n_test >= len(members):
                n_test = max(len(members) - 1, 0)
            test_idx.extend(int(i) for i in members[:n_test])
            train_idx.extend(int(i) for i in members[n_test:])
        return self.subset(sorted(train_idx)), self.subset(sorted(test_idx))

    @property
    def imbalance_ratio(self) -> float:
        """``n_trojan_free / n_trojan_infected`` (inf when no infected samples)."""
        n_infected = int(self.labels.sum())
        n_clean = len(self) - n_infected
        if n_infected == 0:
            return float("inf")
        return n_clean / n_infected
