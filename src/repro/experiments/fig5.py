"""Experiment E5 — Fig. 5: radar plot of consolidated metrics.

The paper's radar plot gathers discrimination metrics (AUC, resolution,
refinement loss), combined calibration+discrimination metrics (Brier score,
Brier skill score) and point metrics (sensitivity, accuracy) for the winning
model on one normalised 0-1 scale.  This experiment computes the raw metrics
and the normalised polygon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..metrics.radar import consolidated_metrics, radar_polygon
from ..metrics.report import format_metric_block, format_radar
from .common import ExperimentConfig, fit_and_split


@dataclass
class Fig5Result:
    """Raw consolidated metrics plus the normalised radar polygon."""

    strategy: str
    metrics: Dict[str, float]
    polygon: List[Tuple[str, float]]
    n_test: int

    def format(self) -> str:
        raw = format_metric_block(self.metrics, title="Fig. 5: consolidated metrics (raw)")
        radar = format_radar(self.polygon, title="Fig. 5: radar axes (normalised, higher=better)")
        return f"{raw}\n{radar}"


def run_fig5(
    config: Optional[ExperimentConfig] = None, strategy: str = "late_fusion"
) -> Fig5Result:
    """Run experiment E5 for the requested strategy (default: late fusion)."""
    config = config or ExperimentConfig()
    config.validate()
    models, _, test = fit_and_split(config)
    if strategy not in models:
        raise ValueError(f"unknown strategy {strategy!r}; have {sorted(models)}")
    probabilities = models[strategy].predict_proba(test)[:, 1]
    metrics = consolidated_metrics(probabilities, test.labels)
    return Fig5Result(
        strategy=strategy,
        metrics=metrics,
        polygon=radar_polygon(metrics),
        n_test=len(test),
    )
