"""Experiment E2 — Fig. 2: Brier score distribution for early and late fusion.

The paper's Fig. 2a/2b show the distribution of the Brier score (with its
mean interval) across scenarios for the two fusion strategies.  Here a
scenario is one reseeded train/test split of the amplified dataset; the
experiment collects the per-scenario Brier scores and summarises the
distribution (mean, standard deviation, a normal-approximation confidence
interval and the quartiles used for a box-style view).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..metrics.report import format_table
from .common import ExperimentConfig, run_scenario, scenario_seeds


@dataclass
class BrierDistribution:
    """Distribution of the Brier score across scenarios for one strategy."""

    strategy: str
    scores: List[float]

    @property
    def mean(self) -> float:
        return float(np.mean(self.scores))

    @property
    def std(self) -> float:
        return float(np.std(self.scores))

    @property
    def minimum(self) -> float:
        return float(np.min(self.scores))

    @property
    def maximum(self) -> float:
        return float(np.max(self.scores))

    def quartiles(self) -> Dict[str, float]:
        q1, median, q3 = np.percentile(self.scores, [25, 50, 75])
        return {"q1": float(q1), "median": float(median), "q3": float(q3)}

    def mean_interval(self, z: float = 1.96) -> Dict[str, float]:
        """Normal-approximation interval around the mean (the 'mean interval'
        shown in the paper's violin plots)."""
        half_width = z * self.std / np.sqrt(max(len(self.scores), 1))
        return {"low": self.mean - half_width, "high": self.mean + half_width}

    def summary(self) -> Dict[str, float]:
        summary = {
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
        }
        summary.update(self.quartiles())
        interval = self.mean_interval()
        summary["mean_low"] = interval["low"]
        summary["mean_high"] = interval["high"]
        return summary


@dataclass
class Fig2Result:
    """Brier distributions for the early- and late-fusion strategies."""

    early_fusion: BrierDistribution
    late_fusion: BrierDistribution
    n_scenarios: int

    def format(self) -> str:
        rows = []
        for distribution in (self.early_fusion, self.late_fusion):
            row: Dict[str, object] = {"strategy": distribution.strategy}
            row.update(distribution.summary())
            rows.append(row)
        return format_table(
            rows,
            columns=["strategy", "mean", "std", "q1", "median", "q3", "mean_low", "mean_high"],
            title=(
                "Fig. 2: Brier score distribution across "
                f"{self.n_scenarios} scenarios (early vs late fusion)"
            ),
        )

    @property
    def late_fusion_wins(self) -> bool:
        return self.late_fusion.mean <= self.early_fusion.mean


def run_fig2(
    config: Optional[ExperimentConfig] = None, n_scenarios: Optional[int] = None
) -> Fig2Result:
    """Run experiment E2 and return the per-strategy Brier distributions."""
    config = config or ExperimentConfig()
    if n_scenarios is not None:
        config.n_scenarios = n_scenarios
    config.validate()
    early: List[float] = []
    late: List[float] = []
    for seed in scenario_seeds(config):
        results = run_scenario(config, seed, strategies=["early_fusion", "late_fusion"])
        early.append(results["early_fusion"].brier_score)
        late.append(results["late_fusion"].brier_score)
    return Fig2Result(
        early_fusion=BrierDistribution("early_fusion", early),
        late_fusion=BrierDistribution("late_fusion", late),
        n_scenarios=config.n_scenarios,
    )
