"""Experiment B1 — baseline comparison.

The paper's related work applies classical single-modality models (SVM,
neural networks, XGBoost-style boosting, random forests) to Trojan
detection.  This experiment trains each baseline on a single modality (and
on naively concatenated features) and compares Brier/AUC against NOODLE's
late fusion, all on the same train/test split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..baselines import BASELINE_REGISTRY
from ..core import LateFusionModel, evaluate_fusion_model
from ..metrics.brier import brier_score
from ..metrics.report import format_table
from ..metrics.roc import roc_auc
from .common import ExperimentConfig, prepare_experiment_data


@dataclass
class BaselineComparisonResult:
    """Brier/AUC of each baseline (per feature set) and of NOODLE late fusion."""

    scores: Dict[str, Dict[str, float]]

    def format(self) -> str:
        rows = [{"model": name, **metrics} for name, metrics in self.scores.items()]
        rows.sort(key=lambda row: row["brier"])
        return format_table(
            rows,
            columns=["model", "brier", "auc"],
            title="Baseline comparison (sorted by Brier score)",
        )

    @property
    def noodle_rank(self) -> int:
        """1-based rank of NOODLE late fusion by Brier score (1 = best)."""
        ordered = sorted(self.scores.items(), key=lambda kv: kv[1]["brier"])
        for rank, (name, _) in enumerate(ordered, start=1):
            if name == "noodle_late_fusion":
                return rank
        raise RuntimeError("NOODLE results missing from the comparison")


def run_baseline_comparison(
    config: Optional[ExperimentConfig] = None,
    baseline_names: Optional[List[str]] = None,
    feature_sets: Optional[List[str]] = None,
) -> BaselineComparisonResult:
    """Train every requested baseline and NOODLE on the same split."""
    config = config or ExperimentConfig()
    config.validate()
    baseline_names = baseline_names or sorted(BASELINE_REGISTRY)
    feature_sets = feature_sets or ["tabular", "graph"]
    _, amplified = prepare_experiment_data(config)
    rng = np.random.default_rng(config.seed)
    train, test = amplified.stratified_split(config.test_fraction, rng)

    scores: Dict[str, Dict[str, float]] = {}
    for feature_set in feature_sets:
        if feature_set == "concat":
            x_train = np.hstack([train.graph, train.tabular])
            x_test = np.hstack([test.graph, test.tabular])
        else:
            x_train = train.modality(feature_set)
            x_test = test.modality(feature_set)
        for name in baseline_names:
            model = BASELINE_REGISTRY[name]()
            model.fit(x_train, train.labels)
            probabilities = model.predict_proba(x_test)[:, 1]
            scores[f"{name}[{feature_set}]"] = {
                "brier": brier_score(probabilities, test.labels),
                "auc": roc_auc(probabilities, test.labels),
            }

    noodle = LateFusionModel(config.noodle)
    noodle.fit(train)
    evaluation = evaluate_fusion_model(noodle, test)
    scores["noodle_late_fusion"] = {
        "brier": evaluation.brier_score,
        "auc": evaluation.auc,
    }
    return BaselineComparisonResult(scores=scores)
