"""Shared infrastructure for the paper-reproduction experiments.

Every table/figure runner uses the same recipe:

1. generate a synthetic Trust-Hub-style suite (:class:`ExperimentConfig.suite`);
2. extract both modalities;
3. GAN-amplify to the paper's ~500 data points;
4. split into train / test (the paper's held-out 109 test points);
5. fit the fusion strategies and evaluate.

:func:`prepare_experiment_data` performs steps 1-3 and memoises the result
(keyed by the configuration), because several benchmarks share the same
prepared dataset and the expensive part — RTL generation, parsing, feature
extraction and GAN training — is identical across them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import FusionEvaluation, NoodleConfig, default_config, evaluate_fusion_model
from ..core.fusion import ConformalFusionModel
from ..engine.training import build_strategies
from ..features import MultimodalFeatures, extract_modalities
from ..gan import AmplificationConfig, GANConfig, amplify_multimodal
from ..trojan import SuiteConfig, TrojanDataset

__all__ = [
    "ExperimentConfig",
    "PAPER_ROC_AUC",
    "PAPER_TABLE1",
    "PAPER_TEST_SIZE",
    "STRATEGIES",
    "build_strategies",
    "clear_prepared_cache",
    "fit_and_split",
    "prepare_experiment_data",
    "quick_config",
    "run_scenario",
    "scenario_seeds",
]

#: Paper-reported values used for side-by-side comparison in the benchmarks.
PAPER_TABLE1 = {
    "graph": 0.1798,
    "tabular": 0.1913,
    "early_fusion": 0.1685,
    "late_fusion": 0.1589,
}
PAPER_ROC_AUC = 0.928
PAPER_TEST_SIZE = 109

#: Strategy names used across all experiments, in reporting order.
STRATEGIES = ("graph", "tabular", "early_fusion", "late_fusion")


@dataclass
class ExperimentConfig:
    """Configuration shared by all table/figure experiments."""

    suite: SuiteConfig = field(
        default_factory=lambda: SuiteConfig(
            n_trojan_free=64, n_trojan_infected=32, instrumentation_probability=0.6, seed=7
        )
    )
    amplification: AmplificationConfig = field(
        default_factory=lambda: AmplificationConfig(
            target_total=500, gan=GANConfig(epochs=300, seed=3)
        )
    )
    noodle: NoodleConfig = field(default_factory=lambda: default_config(seed=0))
    #: Fraction of the amplified dataset held out for testing (the paper
    #: evaluates on 109 of its ~500 points).
    test_fraction: float = 0.218
    #: Number of repeated scenarios (reseeded splits) to average over.
    n_scenarios: int = 3
    #: Master seed for split/scenario randomisation.
    seed: int = 42

    def validate(self) -> None:
        self.suite.validate()
        self.amplification.validate()
        self.noodle.validate()
        if not 0.0 < self.test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        if self.n_scenarios <= 0:
            raise ValueError("n_scenarios must be positive")


def quick_config(seed: int = 0) -> ExperimentConfig:
    """A deliberately small configuration for unit tests and smoke runs."""
    noodle = default_config(seed=seed)
    noodle.classifier.epochs = 15
    config = ExperimentConfig(
        suite=SuiteConfig(n_trojan_free=16, n_trojan_infected=8, seed=5),
        amplification=AmplificationConfig(target_total=80, gan=GANConfig(epochs=80, seed=2)),
        noodle=noodle,
        test_fraction=0.25,
        n_scenarios=1,
        seed=seed,
    )
    config.validate()
    return config


# -- dataset preparation (memoised) ------------------------------------------

_PREPARED_CACHE: Dict[Tuple, Tuple[MultimodalFeatures, MultimodalFeatures]] = {}


def _cache_key(config: ExperimentConfig) -> Tuple:
    suite = config.suite
    amplification = config.amplification
    return (
        suite.n_trojan_free,
        suite.n_trojan_infected,
        tuple(suite.families),
        suite.instrumentation_probability,
        suite.max_instrumentation,
        suite.seed,
        amplification.target_total,
        amplification.balance_classes,
        amplification.gan.epochs,
        amplification.gan.latent_dim,
        amplification.gan.seed,
    )


def prepare_experiment_data(
    config: ExperimentConfig, use_cache: bool = True
) -> Tuple[MultimodalFeatures, MultimodalFeatures]:
    """Return ``(real_features, amplified_features)`` for the configuration."""
    config.validate()
    key = _cache_key(config)
    if use_cache and key in _PREPARED_CACHE:
        return _PREPARED_CACHE[key]
    dataset = TrojanDataset.generate(config.suite)
    real = extract_modalities(dataset)
    amplified = amplify_multimodal(real, config.amplification)
    if use_cache:
        _PREPARED_CACHE[key] = (real, amplified)
    return real, amplified


def clear_prepared_cache() -> None:
    """Drop memoised datasets (used by tests that tweak configurations)."""
    _PREPARED_CACHE.clear()


# -- strategy fitting ----------------------------------------------------------
#
# ``build_strategies`` moved to :mod:`repro.engine.training` (the scan
# engine and the experiments share one definition); it is re-exported here
# for the benchmarks and any downstream users of the historical location.


def run_scenario(
    config: ExperimentConfig,
    scenario_seed: int,
    strategies: Optional[List[str]] = None,
) -> Dict[str, FusionEvaluation]:
    """Run one train/test scenario and evaluate the requested strategies."""
    _, amplified = prepare_experiment_data(config)
    rng = np.random.default_rng(scenario_seed)
    train, test = amplified.stratified_split(config.test_fraction, rng)
    noodle_config = replace(config.noodle, seed=scenario_seed)
    noodle_config.classifier = replace(config.noodle.classifier, seed=scenario_seed)
    models = build_strategies(noodle_config)
    wanted = strategies or list(STRATEGIES)
    results: Dict[str, FusionEvaluation] = {}
    for name in wanted:
        model = models[name]
        model.fit(train)
        results[name] = evaluate_fusion_model(model, test)
    return results


def scenario_seeds(config: ExperimentConfig) -> List[int]:
    """Deterministic list of per-scenario seeds derived from the master seed."""
    return [config.seed + 101 * i for i in range(config.n_scenarios)]


def fit_and_split(
    config: ExperimentConfig, scenario_seed: Optional[int] = None
) -> Tuple[Dict[str, ConformalFusionModel], MultimodalFeatures, MultimodalFeatures]:
    """Fit all strategies once and return them with the train/test split.

    Used by the figure experiments (calibration, ROC, radar) that need the
    fitted models and the test split rather than just summary metrics.
    """
    _, amplified = prepare_experiment_data(config)
    seed = scenario_seed if scenario_seed is not None else config.seed
    rng = np.random.default_rng(seed)
    train, test = amplified.stratified_split(config.test_fraction, rng)
    noodle_config = replace(config.noodle, seed=seed)
    noodle_config.classifier = replace(config.noodle.classifier, seed=seed)
    models = build_strategies(noodle_config)
    for model in models.values():
        model.fit(train)
    return models, train, test
