"""Ablation experiments for the design choices called out in DESIGN.md.

A1 — p-value combination method: Algorithm 1 needs a combination test
     statistic; the paper leaves the choice open (citing the comparative
     study of Balasubramanian et al.).  This ablation sweeps the available
     combiners on the late-fusion model.
A2 — GAN amplification: the paper argues amplification to ~500 points fixes
     the small-data / imbalance problem.  This ablation compares training on
     the raw (small, imbalanced) data against GAN-amplified data of several
     target sizes, always evaluating on the same real held-out designs.
A3 — missing-modality imputation: drop one modality for a fraction of the
     samples and compare GAN imputation against zero-filling.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from ..conformal import available_combiners
from ..core import LateFusionModel, evaluate_fusion_model
from ..features.pipeline import MODALITY_TABULAR, MultimodalFeatures
from ..gan import AmplificationConfig, impute_missing_modalities
from ..gan.augmentation import amplify_multimodal
from ..metrics.brier import brier_score
from ..metrics.report import format_table
from ..metrics.roc import roc_auc
from .common import ExperimentConfig, prepare_experiment_data


# ---------------------------------------------------------------------------
# A1: p-value combination methods
# ---------------------------------------------------------------------------


@dataclass
class CombinationAblationResult:
    """Brier/AUC of late fusion for every p-value combination method."""

    scores: Dict[str, Dict[str, float]]

    def format(self) -> str:
        rows = [
            {"method": method, **metrics} for method, metrics in sorted(self.scores.items())
        ]
        return format_table(
            rows,
            columns=["method", "brier", "auc", "coverage", "uncertain_fraction"],
            title="Ablation A1: p-value combination method (late fusion)",
        )

    def best_method(self) -> str:
        return min(self.scores, key=lambda m: self.scores[m]["brier"])


def run_combination_ablation(
    config: Optional[ExperimentConfig] = None, methods: Optional[List[str]] = None
) -> CombinationAblationResult:
    """Sweep p-value combination methods on the late-fusion strategy."""
    config = config or ExperimentConfig()
    config.validate()
    methods = methods or available_combiners()
    _, amplified = prepare_experiment_data(config)
    rng = np.random.default_rng(config.seed)
    train, test = amplified.stratified_split(config.test_fraction, rng)
    scores: Dict[str, Dict[str, float]] = {}
    for method in methods:
        noodle_config = replace(config.noodle, combination_method=method)
        model = LateFusionModel(noodle_config)
        model.fit(train)
        evaluation = evaluate_fusion_model(model, test)
        scores[method] = {
            "brier": evaluation.brier_score,
            "auc": evaluation.auc,
            "coverage": evaluation.coverage,
            "uncertain_fraction": evaluation.uncertain_fraction,
        }
    return CombinationAblationResult(scores=scores)


# ---------------------------------------------------------------------------
# A2: GAN amplification on/off and target-size sweep
# ---------------------------------------------------------------------------


@dataclass
class AmplificationAblationResult:
    """Effect of GAN amplification on late-fusion quality."""

    scores: Dict[str, Dict[str, float]]

    def format(self) -> str:
        rows = [{"setting": name, **metrics} for name, metrics in self.scores.items()]
        return format_table(
            rows,
            columns=["setting", "train_size", "brier", "auc"],
            title="Ablation A2: GAN amplification (late fusion, real test designs)",
        )

    @property
    def amplification_helps(self) -> bool:
        """True when the largest amplified setting beats the raw training data."""
        amplified = [v for k, v in self.scores.items() if k != "no_amplification"]
        if not amplified:
            return False
        best_amplified = min(v["brier"] for v in amplified)
        return best_amplified <= self.scores["no_amplification"]["brier"]


def run_amplification_ablation(
    config: Optional[ExperimentConfig] = None,
    target_sizes: Optional[List[int]] = None,
) -> AmplificationAblationResult:
    """Compare no amplification against several GAN amplification targets.

    Training always happens on (possibly amplified) training designs and
    evaluation on the *real* held-out designs, so the comparison isolates
    what the synthetic samples contribute.
    """
    config = config or ExperimentConfig()
    config.validate()
    target_sizes = target_sizes or [200, 500]
    real, _ = prepare_experiment_data(config)
    rng = np.random.default_rng(config.seed)
    train_real, test_real = real.stratified_split(0.25, rng)

    scores: Dict[str, Dict[str, float]] = {}

    def evaluate_on(train_features: MultimodalFeatures, setting: str) -> None:
        model = LateFusionModel(config.noodle)
        model.fit(train_features)
        probabilities = model.predict_proba(test_real)[:, 1]
        scores[setting] = {
            "train_size": float(len(train_features)),
            "brier": brier_score(probabilities, test_real.labels),
            "auc": roc_auc(probabilities, test_real.labels),
        }

    evaluate_on(train_real, "no_amplification")
    for target in target_sizes:
        amplification = AmplificationConfig(
            target_total=target, gan=config.amplification.gan
        )
        amplified_train = amplify_multimodal(train_real, amplification)
        evaluate_on(amplified_train, f"gan_to_{target}")
    return AmplificationAblationResult(scores=scores)


# ---------------------------------------------------------------------------
# A3: missing-modality imputation
# ---------------------------------------------------------------------------


@dataclass
class MissingModalityAblationResult:
    """Effect of GAN imputation vs zero-filling when a modality is missing."""

    scores: Dict[str, Dict[str, float]]
    missing_fraction: float

    def format(self) -> str:
        rows = [{"setting": name, **metrics} for name, metrics in self.scores.items()]
        return format_table(
            rows,
            columns=["setting", "brier", "auc"],
            title=(
                "Ablation A3: missing tabular modality for "
                f"{self.missing_fraction:.0%} of training samples (late fusion)"
            ),
        )

    @property
    def imputation_helps(self) -> bool:
        return self.scores["gan_imputation"]["brier"] <= self.scores["zero_fill"]["brier"]


def run_missing_modality_ablation(
    config: Optional[ExperimentConfig] = None, missing_fraction: float = 0.3
) -> MissingModalityAblationResult:
    """Drop the tabular modality for a fraction of training samples and
    compare GAN imputation against zero-filling (complete data included as
    the reference upper bound)."""
    config = config or ExperimentConfig()
    config.validate()
    if not 0.0 < missing_fraction < 1.0:
        raise ValueError("missing_fraction must be in (0, 1)")
    _, amplified = prepare_experiment_data(config)
    rng = np.random.default_rng(config.seed)
    train, test = amplified.stratified_split(config.test_fraction, rng)
    damaged = train.with_missing_modality(
        MODALITY_TABULAR, missing_fraction, rng=np.random.default_rng(config.seed + 1)
    )

    scores: Dict[str, Dict[str, float]] = {}

    def evaluate_on(train_features: MultimodalFeatures, setting: str) -> None:
        model = LateFusionModel(config.noodle)
        model.fit(train_features)
        probabilities = model.predict_proba(test)[:, 1]
        scores[setting] = {
            "brier": brier_score(probabilities, test.labels),
            "auc": roc_auc(probabilities, test.labels),
        }

    evaluate_on(train, "complete_data")
    zero_filled = MultimodalFeatures(
        tabular=np.nan_to_num(damaged.tabular, nan=0.0),
        graph=np.nan_to_num(damaged.graph, nan=0.0),
        graph_images=damaged.graph_images,
        labels=damaged.labels,
        names=list(damaged.names),
        tabular_feature_names=damaged.tabular_feature_names,
        graph_feature_names=damaged.graph_feature_names,
    )
    evaluate_on(zero_filled, "zero_fill")
    evaluate_on(impute_missing_modalities(damaged), "gan_imputation")
    return MissingModalityAblationResult(scores=scores, missing_fraction=missing_fraction)
