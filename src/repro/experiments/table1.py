"""Experiment E1 — Table I: Brier score comparison across modalities/fusions.

Reproduces the paper's headline table: the Brier score of the graph-only and
tabular-only classifiers and of NOODLE with early and late fusion, averaged
over ``n_scenarios`` reseeded train/test splits of the GAN-amplified dataset.

Expected shape (paper): late fusion < early fusion < graph < tabular.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..metrics.report import format_table
from .common import (
    PAPER_TABLE1,
    STRATEGIES,
    ExperimentConfig,
    run_scenario,
    scenario_seeds,
)

#: Row labels used in the printed table, mirroring the paper's wording.
_ROW_LABELS = {
    "graph": "Graph-based Data",
    "tabular": "Tabular-based Data",
    "early_fusion": "NOODLE - Early Fusion (Graph + Tabular)",
    "late_fusion": "NOODLE - Late Fusion (Graph + Tabular)",
}


@dataclass
class Table1Result:
    """Measured Table I: per-strategy Brier scores (mean over scenarios)."""

    brier_scores: Dict[str, float]
    brier_std: Dict[str, float]
    auc_scores: Dict[str, float]
    paper_scores: Dict[str, float] = field(default_factory=lambda: dict(PAPER_TABLE1))
    n_scenarios: int = 1

    @property
    def ranking(self) -> List[str]:
        """Strategies ordered from best (lowest Brier) to worst."""
        return sorted(self.brier_scores, key=self.brier_scores.get)

    @property
    def fusion_beats_single(self) -> bool:
        """True when the best fusion strategy beats both single modalities."""
        best_fusion = min(
            self.brier_scores["early_fusion"], self.brier_scores["late_fusion"]
        )
        best_single = min(self.brier_scores["graph"], self.brier_scores["tabular"])
        return best_fusion <= best_single

    @property
    def late_beats_early(self) -> bool:
        return self.brier_scores["late_fusion"] <= self.brier_scores["early_fusion"]

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for strategy in STRATEGIES:
            rows.append(
                {
                    "dataset": _ROW_LABELS[strategy],
                    "brier_score": self.brier_scores[strategy],
                    "std": self.brier_std[strategy],
                    "auc": self.auc_scores[strategy],
                    "paper_brier": self.paper_scores[strategy],
                }
            )
        return rows

    def format(self) -> str:
        return format_table(
            self.rows(),
            columns=["dataset", "brier_score", "std", "auc", "paper_brier"],
            title=(
                "Table I: Brier score comparison for different modalities "
                f"(mean of {self.n_scenarios} scenarios)"
            ),
        )


def run_table1(config: Optional[ExperimentConfig] = None) -> Table1Result:
    """Run experiment E1 and return the measured Table I."""
    config = config or ExperimentConfig()
    config.validate()
    per_strategy_brier: Dict[str, List[float]] = {name: [] for name in STRATEGIES}
    per_strategy_auc: Dict[str, List[float]] = {name: [] for name in STRATEGIES}
    for seed in scenario_seeds(config):
        results = run_scenario(config, seed)
        for name in STRATEGIES:
            per_strategy_brier[name].append(results[name].brier_score)
            per_strategy_auc[name].append(results[name].auc)
    return Table1Result(
        brier_scores={k: float(np.mean(v)) for k, v in per_strategy_brier.items()},
        brier_std={k: float(np.std(v)) for k, v in per_strategy_brier.items()},
        auc_scores={k: float(np.mean(v)) for k, v in per_strategy_auc.items()},
        n_scenarios=config.n_scenarios,
    )
