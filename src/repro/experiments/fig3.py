"""Experiment E3 — Fig. 3: confidence calibration curve and forecast histogram.

The paper plots the reliability (calibration) curve of the winning fusion
model on its held-out test set together with a histogram of the predicted
probabilities (sharpness).  This experiment produces both data series, plus
the scalar calibration summaries (ECE, MCE, sharpness) used in the write-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..metrics.brier import brier_score, sharpness
from ..metrics.calibration import (
    CalibrationCurve,
    calibration_curve,
    expected_calibration_error,
    maximum_calibration_error,
    probability_histogram,
)
from ..metrics.report import format_curve, format_metric_block
from .common import ExperimentConfig, fit_and_split


@dataclass
class Fig3Result:
    """Calibration curve, probability histogram and summary statistics."""

    strategy: str
    curve: CalibrationCurve
    histogram: Dict[str, List[float]]
    expected_calibration_error: float
    maximum_calibration_error: float
    sharpness: float
    brier_score: float
    n_test: int

    def format(self) -> str:
        sections = [
            format_metric_block(
                {
                    "strategy": self.strategy,
                    "n_test": self.n_test,
                    "ECE": self.expected_calibration_error,
                    "MCE": self.maximum_calibration_error,
                    "sharpness": self.sharpness,
                    "brier": self.brier_score,
                },
                title="Fig. 3: confidence calibration summary",
            ),
            format_curve(
                self.curve.mean_predicted,
                self.curve.observed_frequency,
                x_label="mean predicted probability",
                y_label="observed frequency",
            ),
            format_curve(
                self.histogram["bin_centers"],
                [float(c) for c in self.histogram["counts"]],
                x_label="predicted probability",
                y_label="count",
            ),
        ]
        return "\n".join(sections)


def run_fig3(
    config: Optional[ExperimentConfig] = None,
    strategy: str = "late_fusion",
    n_bins: int = 10,
) -> Fig3Result:
    """Run experiment E3 for the requested fusion strategy (default: late)."""
    config = config or ExperimentConfig()
    config.validate()
    models, _, test = fit_and_split(config)
    if strategy not in models:
        raise ValueError(f"unknown strategy {strategy!r}; have {sorted(models)}")
    model = models[strategy]
    probabilities = model.predict_proba(test)[:, 1]
    labels = test.labels
    return Fig3Result(
        strategy=strategy,
        curve=calibration_curve(probabilities, labels, n_bins=n_bins),
        histogram=probability_histogram(probabilities, n_bins=n_bins),
        expected_calibration_error=expected_calibration_error(
            probabilities, labels, n_bins=n_bins
        ),
        maximum_calibration_error=maximum_calibration_error(
            probabilities, labels, n_bins=n_bins
        ),
        sharpness=sharpness(probabilities),
        brier_score=brier_score(probabilities, labels),
        n_test=len(test),
    )
