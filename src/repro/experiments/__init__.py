"""Experiment runners that regenerate each table and figure of the paper.

* E1 — :func:`run_table1` (Table I, Brier score comparison)
* E2 — :func:`run_fig2` (Brier score distribution, early vs late fusion)
* E3 — :func:`run_fig3` (confidence calibration curve + histogram)
* E4 — :func:`run_fig4` (ROC-AUC curve under late fusion)
* E5 — :func:`run_fig5` (radar plot of consolidated metrics)
* A1-A3 — ablations (p-value combination, GAN amplification, missing modality)
* B1 — :func:`run_baseline_comparison`
"""

from .ablations import (
    AmplificationAblationResult,
    CombinationAblationResult,
    MissingModalityAblationResult,
    run_amplification_ablation,
    run_combination_ablation,
    run_missing_modality_ablation,
)
from .baselines_exp import BaselineComparisonResult, run_baseline_comparison
from .common import (
    PAPER_ROC_AUC,
    PAPER_TABLE1,
    PAPER_TEST_SIZE,
    STRATEGIES,
    ExperimentConfig,
    build_strategies,
    clear_prepared_cache,
    fit_and_split,
    prepare_experiment_data,
    quick_config,
    run_scenario,
    scenario_seeds,
)
from .fig2 import BrierDistribution, Fig2Result, run_fig2
from .fig3 import Fig3Result, run_fig3
from .fig4 import Fig4Result, run_fig4
from .fig5 import Fig5Result, run_fig5
from .table1 import Table1Result, run_table1

__all__ = [
    "AmplificationAblationResult",
    "BaselineComparisonResult",
    "BrierDistribution",
    "CombinationAblationResult",
    "ExperimentConfig",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "MissingModalityAblationResult",
    "PAPER_ROC_AUC",
    "PAPER_TABLE1",
    "PAPER_TEST_SIZE",
    "STRATEGIES",
    "Table1Result",
    "build_strategies",
    "clear_prepared_cache",
    "fit_and_split",
    "prepare_experiment_data",
    "quick_config",
    "run_amplification_ablation",
    "run_baseline_comparison",
    "run_combination_ablation",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_missing_modality_ablation",
    "run_scenario",
    "run_table1",
    "scenario_seeds",
]
