"""Experiment E4 — Fig. 4: ROC-AUC curve of NOODLE under late fusion.

The paper reports AUC = 0.928 for the late-fusion model on the held-out
test set.  This experiment computes the full ROC curve plus the AUC and a
comparison against the paper value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..metrics.report import format_curve, format_metric_block
from ..metrics.roc import ROCCurve, roc_curve
from .common import PAPER_ROC_AUC, ExperimentConfig, fit_and_split


@dataclass
class Fig4Result:
    """ROC curve and AUC for one fusion strategy."""

    strategy: str
    curve: ROCCurve
    paper_auc: float
    n_test: int

    @property
    def auc(self) -> float:
        return self.curve.auc

    def format(self) -> str:
        header = format_metric_block(
            {
                "strategy": self.strategy,
                "n_test": self.n_test,
                "auc": self.auc,
                "paper_auc": self.paper_auc,
            },
            title="Fig. 4: ROC-AUC under late fusion",
        )
        curve = format_curve(
            list(self.curve.false_positive_rate),
            list(self.curve.true_positive_rate),
            x_label="false positive rate",
            y_label="true positive rate",
        )
        return f"{header}\n{curve}"


def run_fig4(
    config: Optional[ExperimentConfig] = None, strategy: str = "late_fusion"
) -> Fig4Result:
    """Run experiment E4 (ROC of the late-fusion model by default)."""
    config = config or ExperimentConfig()
    config.validate()
    models, _, test = fit_and_split(config)
    if strategy not in models:
        raise ValueError(f"unknown strategy {strategy!r}; have {sorted(models)}")
    probabilities = models[strategy].predict_proba(test)[:, 1]
    return Fig4Result(
        strategy=strategy,
        curve=roc_curve(probabilities, test.labels),
        paper_auc=PAPER_ROC_AUC,
        n_test=len(test),
    )
