#!/usr/bin/env python3
"""Security-audit campaign: scan a batch of third-party IP cores.

Scenario (the paper's motivating zero-trust fabless setting): an integration
team receives RTL deliveries from several vendors and wants to vet each one
before tape-in.  A NOODLE model is trained on an in-house labelled corpus,
then applied to the incoming (unlabelled) deliveries.  Designs whose
conformal prediction region is *uncertain* or *empty* are routed to manual
review instead of being silently accepted or rejected — the risk-aware
decision flow the paper argues for.

Run with:  python examples/trojan_scan_campaign.py
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import NOODLE, SuiteConfig, TrojanDataset, default_config, extract_modalities
from repro.gan import AmplificationConfig, GANConfig
from repro.hdl import parse_module
from repro.trojan import generate_host, insert_trojan


def build_incoming_deliveries(rng: np.random.Generator):
    """Simulate a batch of vendor deliveries: mostly clean, a few infected."""
    deliveries = []
    vendors = ["acme", "bitwise", "coreforge", "darkfab"]
    for i in range(12):
        family = ["crypto", "uart", "mcu", "bus", "dsp"][i % 5]
        vendor = vendors[i % len(vendors)]
        source = generate_host(family, rng, name=f"{vendor}_{family}_ip{i}")
        infected = rng.random() < 0.25
        if infected:
            source = insert_trojan(source, rng).source
        deliveries.append(
            {"name": f"{vendor}/{family}_ip{i}", "source": source, "truly_infected": infected}
        )
    return deliveries


def main() -> None:
    rng = np.random.default_rng(11)

    # -- 1. Train the in-house detector on a labelled corpus -----------------
    print("== Training the in-house NOODLE detector ==")
    corpus = TrojanDataset.generate(SuiteConfig(n_trojan_free=36, n_trojan_infected=18, seed=3))
    corpus_features = extract_modalities(corpus)
    config = default_config(seed=5)
    config.amplify = True
    config.amplification = AmplificationConfig(target_total=300, gan=GANConfig(epochs=250))
    detector = NOODLE(config)
    report = detector.fit(corpus_features)
    print(f"winning fusion strategy: {report.winner}")

    # -- 2. Receive vendor deliveries and extract their modalities -----------
    print("\n== Scanning incoming vendor deliveries ==")
    deliveries = build_incoming_deliveries(rng)
    from repro.trojan.suite import Benchmark
    from repro.trojan.dataset import TrojanDataset as _DS

    incoming = _DS(
        benchmarks=[
            Benchmark(
                name=d["name"],
                family="unknown",
                source=d["source"],
                label=int(d["truly_infected"]),  # ground truth kept only for the report
            )
            for d in deliveries
        ]
    )
    incoming_features = extract_modalities(incoming)

    # -- 3. Triage every delivery ---------------------------------------------
    decisions = detector.decide(incoming_features, include_truth=False)
    accepted, rejected, review = [], [], []
    for delivery, decision in zip(deliveries, decisions):
        if decision.is_uncertain or decision.is_empty:
            queue = review
        elif decision.predicted_label == 1:
            queue = rejected
        else:
            queue = accepted
        queue.append((delivery, decision))

    def show(title: str, entries) -> None:
        print(f"\n{title} ({len(entries)})")
        for delivery, decision in entries:
            module = parse_module(delivery["source"])
            print(
                f"  {delivery['name']:<24} P(infected)={decision.probability_infected:.3f} "
                f"confidence={decision.confidence:.2f} ports={len(module.ports)}"
            )

    show("ACCEPT — confidently Trojan-free", accepted)
    show("REJECT — confidently Trojan-infected", rejected)
    show("MANUAL REVIEW — conformal region is uncertain/empty", review)

    # -- 4. Campaign summary (uses the withheld ground truth) ----------------
    print("\n== Campaign summary (against withheld ground truth) ==")
    outcomes = Counter()
    for delivery, decision in accepted + rejected:
        predicted_infected = decision.predicted_label == 1
        if predicted_infected and delivery["truly_infected"]:
            outcomes["caught"] += 1
        elif predicted_infected and not delivery["truly_infected"]:
            outcomes["false_alarm"] += 1
        elif not predicted_infected and delivery["truly_infected"]:
            outcomes["missed"] += 1
        else:
            outcomes["correctly_accepted"] += 1
    outcomes["sent_to_review"] = len(review)
    for key, value in outcomes.items():
        print(f"  {key:<20}: {value}")
    missed = outcomes.get("missed", 0)
    print(
        "\nEvery auto-accepted Trojan is a silent escape; NOODLE routed "
        f"{outcomes['sent_to_review']} low-confidence designs to review and missed {missed}."
    )


if __name__ == "__main__":
    main()
