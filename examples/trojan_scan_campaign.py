#!/usr/bin/env python3
"""Security-audit campaign: scan a batch of third-party IP cores via the CLI.

Scenario (the paper's motivating zero-trust fabless setting): an integration
team receives RTL deliveries from several vendors and wants to vet each one
before tape-in.  This used to be a hand-rolled script that retrained a NOODLE
model on every run; it is now a thin driver for the scan engine's CLI
(``python -m repro``), demonstrating the production workflow:

1. ``train``  — fit the in-house detector once and persist it as an artifact;
2. ``scan``   — run the batched pipeline over the delivered ``.v`` files
   (content-hash cached, so a re-run of the campaign is nearly free);
3. ``report`` — print the triage queues (accept / reject / manual review).

Run with:  python examples/trojan_scan_campaign.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.engine.cli import main as repro_cli
from repro.trojan import generate_host, insert_trojan


def write_incoming_deliveries(rng: np.random.Generator, directory: Path):
    """Simulate vendor deliveries: mostly clean, a few infected ``.v`` files."""
    deliveries = []
    vendors = ["acme", "bitwise", "coreforge", "darkfab"]
    directory.mkdir(parents=True, exist_ok=True)
    for i in range(12):
        family = ["crypto", "uart", "mcu", "bus", "dsp"][i % 5]
        vendor = vendors[i % len(vendors)]
        source = generate_host(family, rng, name=f"{vendor}_{family}_ip{i}")
        infected = rng.random() < 0.25
        if infected:
            source = insert_trojan(source, rng).source
        path = directory / f"{vendor}_{family}_ip{i}.v"
        path.write_text(source)
        deliveries.append({"name": path.stem, "truly_infected": infected})
    return deliveries


def main() -> None:
    rng = np.random.default_rng(11)
    with tempfile.TemporaryDirectory() as tmp:
        workspace = Path(tmp)
        artifact = workspace / "detector"
        inbox = workspace / "inbox"
        results = workspace / "scan_results.json"

        # -- 1. Train the in-house detector once and persist it --------------
        print("== Training the in-house NOODLE detector (python -m repro train) ==")
        repro_cli(
            [
                "train",
                "--artifact", str(artifact),
                "--strategy", "noodle",
                "--quick",
                "--amplify",
                "--trojan-free", "36",
                "--trojan-infected", "18",
                "--suite-seed", "3",
                "--seed", "5",
            ]
        )

        # -- 2. Receive vendor deliveries and scan them in one batch ---------
        print("\n== Scanning incoming vendor deliveries (python -m repro scan) ==")
        deliveries = write_incoming_deliveries(rng, inbox)
        repro_cli(
            [
                "scan",
                str(inbox),
                "--artifact", str(artifact),
                "--cache-dir", str(workspace / "cache"),
                "--output", str(results),
            ]
        )

        # -- 3. Triage report --------------------------------------------------
        print("\n== Campaign triage (python -m repro report) ==")
        repro_cli(["report", "--input", str(results)])

        # -- 4. Score the campaign against the withheld ground truth ----------
        print("\n== Campaign summary (against withheld ground truth) ==")
        truth = {d["name"]: d["truly_infected"] for d in deliveries}
        records = json.loads(results.read_text())["records"]
        outcomes = {"caught": 0, "false_alarm": 0, "missed": 0,
                    "correctly_accepted": 0, "sent_to_review": 0, "errors": 0}
        for record in records:
            decision = record["decision"]
            if decision is None:  # front-end failure: no verdict to score
                outcomes["errors"] += 1
                continue
            infected = truth[record["name"]]
            uncertain = len(decision["region_labels"]) != 1
            if uncertain:
                outcomes["sent_to_review"] += 1
            elif decision["predicted_label"] == 1:
                outcomes["caught" if infected else "false_alarm"] += 1
            else:
                outcomes["missed" if infected else "correctly_accepted"] += 1
        for key, value in outcomes.items():
            print(f"  {key:<20}: {value}")
        print(
            "\nEvery auto-accepted Trojan is a silent escape; NOODLE routed "
            f"{outcomes['sent_to_review']} low-confidence designs to review "
            f"and missed {outcomes['missed']}."
        )


if __name__ == "__main__":
    main()
