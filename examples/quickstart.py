#!/usr/bin/env python3
"""Quickstart: detect hardware Trojans in RTL designs with NOODLE.

This example walks through the full pipeline on a small synthetic benchmark
suite:

1. generate a Trust-Hub-style population of Trojan-free and Trojan-infected
   Verilog designs;
2. extract the two modalities (data-flow graph features and code-branching
   tabular features);
3. train NOODLE (both fusion strategies, winner chosen by Brier score);
4. classify held-out designs and print the risk-aware decision for each.

Run with:  python examples/quickstart.py

Set ``REPRO_SMOKE=1`` for a miniature configuration (used by the CI docs
job to smoke-test the example in seconds).
"""

from __future__ import annotations

import os

import numpy as np

from repro import NOODLE, SuiteConfig, TrojanDataset, default_config, extract_modalities
from repro.gan import AmplificationConfig, GANConfig
from repro.metrics import brier_score, roc_auc

#: Miniature sizes for CI smoke runs (REPRO_SMOKE=1).
SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")


def main() -> None:
    rng = np.random.default_rng(42)

    # 1. Synthesize a small, imbalanced benchmark population (like Trust-Hub:
    #    many clean design revisions, fewer Trojan-infected ones).
    print("== Generating benchmark suite ==")
    dataset = TrojanDataset.generate(
        SuiteConfig(n_trojan_free=12 if SMOKE else 32, n_trojan_infected=6 if SMOKE else 16, seed=7)
    )
    summary = dataset.summary()
    print(
        f"{summary['total']} designs "
        f"({summary['trojan_free']} Trojan-free, {summary['trojan_infected']} Trojan-infected, "
        f"imbalance {dataset.imbalance_ratio:.1f}:1)"
    )

    # 2. Extract both modalities for every design.
    print("\n== Extracting modalities ==")
    features = extract_modalities(dataset)
    print(
        f"tabular features: {features.tabular.shape[1]}, "
        f"graph features: {features.graph.shape[1]}, "
        f"adjacency images: {features.graph_images.shape[1:]}"
    )

    # 3. Hold out a test set of real designs, then train NOODLE with GAN
    #    amplification enabled (the paper's answer to the small-data problem).
    train, test = features.stratified_split(test_fraction=0.25, rng=rng)
    config = default_config(seed=1)
    config.amplify = True
    if SMOKE:
        config.classifier.epochs = 10
        config.amplification = AmplificationConfig(target_total=60, gan=GANConfig(epochs=40))
    else:
        config.amplification = AmplificationConfig(target_total=300, gan=GANConfig(epochs=250))

    print("\n== Training NOODLE (early + late fusion, winner by Brier score) ==")
    detector = NOODLE(config)
    report = detector.fit(train)
    for line in report.summary_lines():
        print(line)

    # 4. Risk-aware decisions on the held-out designs.
    print("\n== Decisions on held-out designs ==")
    decisions = detector.decide(test)
    header = f"{'design':<16} {'verdict':<32} {'P(infected)':>12} {'credibility':>12} {'truth':>8}"
    print(header)
    print("-" * len(header))
    for decision in decisions:
        truth = "TI" if decision.true_label == 1 else "TF"
        print(
            f"{decision.name:<16} {decision.verdict:<32} "
            f"{decision.probability_infected:>12.3f} {decision.credibility:>12.3f} {truth:>8}"
        )

    probabilities = detector.predict_proba(test)[:, 1]
    print("\n== Test-set summary ==")
    print(f"Brier score : {brier_score(probabilities, test.labels):.4f}")
    print(f"ROC-AUC     : {roc_auc(probabilities, test.labels):.4f}")
    correct = np.mean(detector.predict(test) == test.labels)
    print(f"accuracy    : {correct:.3f}")


if __name__ == "__main__":
    main()
