#!/usr/bin/env python3
"""Online scanning demo: a live scan service and its HTTP client.

Where ``trojan_scan_campaign.py`` shows the batch workflow (one big scan
per vendor delivery), this demo shows the *serving* workflow: the
detector stays resident in a long-lived process and callers submit
designs over HTTP as they arrive — CI hooks, vendor portals, interactive
review tools.  Concurrent requests are micro-batched into shared forward
passes; the client never knows or cares.

The demo, all in one process:

1. trains a quick detector and saves the artifact;
2. starts :class:`repro.serve.server.ScanService` on a free local port
   (the in-process twin of ``python -m repro serve``);
3. fires a wave of concurrent single-design scan requests through
   :class:`repro.serve.client.ScanServiceClient` and prints each verdict;
4. shows ``/metrics`` proof that the requests shared micro-batches;
5. shuts down gracefully (drains in-flight batches, flushes the cache).

Run with:  python examples/scan_service_demo.py
(seconds-long already; ``REPRO_SMOKE=1`` shrinks it further)
"""

from __future__ import annotations

import os
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.core.config import ClassifierConfig, NoodleConfig
from repro.engine import save_detector, train_detector
from repro.features import extract_modalities
from repro.serve.client import ScanServiceClient
from repro.serve.server import ScanService
from repro.trojan import SuiteConfig, TrojanDataset, generate_host

SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def train_quick_detector(workdir: Path) -> Path:
    """Fit a small late-fusion detector and persist it as an artifact."""
    suite = TrojanDataset.generate(
        SuiteConfig(n_trojan_free=10 if SMOKE else 20,
                    n_trojan_infected=5 if SMOKE else 10, seed=7)
    )
    features = extract_modalities(suite)
    config = NoodleConfig(
        classifier=ClassifierConfig(epochs=3 if SMOKE else 10, seed=0), seed=0
    )
    result = train_detector(features, strategy="late", config=config)
    return save_detector(result.model, workdir / "detector")


def incoming_designs(n: int) -> list:
    """Simulate designs arriving from independent callers."""
    rng = np.random.default_rng(11)
    families = ["crypto", "uart", "mcu", "bus", "dsp"]
    return [
        (f"review_{i}", generate_host(families[i % len(families)], rng, name=f"review_{i}"))
        for i in range(n)
    ]


def main() -> None:
    """Train, serve, scan concurrently, inspect metrics, drain."""
    n_designs = 6 if SMOKE else 12
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        artifact = train_quick_detector(workdir)
        print(f"artifact saved: {artifact}")

        with ScanService(
            artifact, port=0, cache_dir=workdir / "cache", batch_window_s=0.02
        ) as service:
            print(f"scan service listening on http://{service.host}:{service.port}")
            ScanServiceClient(service.host, service.port).wait_until_ready()

            def scan_one(pair):
                # One keep-alive client per caller thread.
                with ScanServiceClient(service.host, service.port) as client:
                    return client.scan_texts([pair])

            designs = incoming_designs(n_designs)
            with ThreadPoolExecutor(4) as callers:
                responses = list(callers.map(scan_one, designs))

            print(f"\nverdicts ({n_designs} concurrent requests):")
            for response in responses:
                record = response["records"][0]
                decision = record["decision"]
                verdict = (
                    f"P(infected)={decision['probability_infected']:.3f} "
                    f"confidence={decision['confidence']:.2f}"
                    if decision
                    else f"error: {record['error']}"
                )
                print(f"  {record['name']:<12} {verdict} "
                      f"(shared a batch of {response['batch']['designs']})")

            with ScanServiceClient(service.host, service.port) as client:
                metrics = client.metrics()
            print(
                f"\nmetrics: {metrics['scan_requests']} requests served in "
                f"{metrics['batches_total']} micro-batches "
                f"(mean {metrics['mean_batch_designs']:.1f} designs/batch, "
                f"p50 latency {metrics['latency_seconds']['p50'] * 1000:.1f}ms)"
            )
        print("service drained and shut down cleanly")


if __name__ == "__main__":
    main()
