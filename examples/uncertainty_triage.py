#!/usr/bin/env python3
"""Uncertainty quantification deep-dive: conformal guarantees in practice.

This example focuses on the *uncertainty-aware* part of NOODLE rather than
raw accuracy:

* empirical validity — does the conformal prediction region contain the true
  label at (at least) the promised confidence level, including for the rare
  Trojan-infected class?
* efficiency — how often is the region a useful singleton?
* triage — how does the share of designs needing manual review change as the
  required confidence increases?
* p-value combination — how do the different combination statistics of
  Algorithm 1 compare on the same late-fusion model?

Run with:  python examples/uncertainty_triage.py
"""

from __future__ import annotations

import numpy as np

from repro import LateFusionModel, SuiteConfig, TrojanDataset, default_config, extract_modalities
from repro.conformal import (
    available_combiners,
    combine_p_value_matrices,
    evaluate_p_values,
    prediction_regions,
    region_kind_counts,
    set_confusion_matrix,
)
from repro.gan import AmplificationConfig, GANConfig, amplify_multimodal
from repro.metrics import brier_score, format_table


def main() -> None:
    rng = np.random.default_rng(17)

    # -- data + model ----------------------------------------------------------
    print("== Preparing data and training a late-fusion model ==")
    dataset = TrojanDataset.generate(SuiteConfig(n_trojan_free=40, n_trojan_infected=20, seed=9))
    features = extract_modalities(dataset)
    amplified = amplify_multimodal(
        features, AmplificationConfig(target_total=300, gan=GANConfig(epochs=250, seed=1))
    )
    train, test = amplified.stratified_split(0.25, rng)
    config = default_config(seed=2)
    model = LateFusionModel(config)
    model.fit(train)
    p_values = model.p_values(test)
    labels = test.labels
    print(f"test designs: {len(test)} ({int(labels.sum())} Trojan-infected)")

    # -- validity & efficiency across confidence levels -------------------------
    print("\n== Conformal validity and efficiency ==")
    rows = []
    for confidence in (0.80, 0.90, 0.95, 0.99):
        evaluation = evaluate_p_values(p_values, labels, confidence=confidence)
        rows.append(
            {
                "confidence": confidence,
                "coverage": evaluation.coverage,
                "coverage_TI": evaluation.per_class_coverage.get(1, float("nan")),
                "avg_region_size": evaluation.average_region_size,
                "singletons": evaluation.singleton_fraction,
                "needs_review": evaluation.uncertain_fraction + evaluation.empty_fraction,
            }
        )
    print(
        format_table(
            rows,
            columns=[
                "confidence",
                "coverage",
                "coverage_TI",
                "avg_region_size",
                "singletons",
                "needs_review",
            ],
            title="Validity (coverage >= confidence) and triage load vs confidence level",
        )
    )

    # -- set-valued confusion matrix at the working point -----------------------
    print("\n== Set-valued confusion matrix at 90% confidence ==")
    regions = prediction_regions(p_values, confidence=0.9)
    print(f"region kinds: {region_kind_counts(regions)}")
    for key, value in set_confusion_matrix(regions, labels).items():
        print(f"  {key:<16}: {value}")

    # -- p-value combination statistics (Algorithm 1 ablation) ------------------
    print("\n== p-value combination methods on the same per-modality p-values ==")
    per_modality = model.per_modality_p_values(test)
    matrices = [per_modality[m] for m in config.modalities]
    rows = []
    for method in available_combiners():
        combined = combine_p_value_matrices(matrices, method)
        probabilities = combined[:, 1] / np.maximum(combined.sum(axis=1), 1e-12)
        evaluation = evaluate_p_values(combined, labels, confidence=0.9)
        rows.append(
            {
                "method": method,
                "brier": brier_score(probabilities, labels),
                "coverage": evaluation.coverage,
                "singletons": evaluation.singleton_fraction,
            }
        )
    print(
        format_table(
            rows,
            columns=["method", "brier", "coverage", "singletons"],
            title="Combination statistic comparison (late fusion)",
        )
    )

    print(
        "\nReading guide: coverage should sit at or above the requested confidence "
        "(conformal validity); the price of more confidence is a larger share of "
        "designs whose region is uncertain and therefore needs manual review."
    )


if __name__ == "__main__":
    main()
