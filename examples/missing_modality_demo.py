#!/usr/bin/env python3
"""Missing-modality handling: GAN imputation versus naive fallbacks.

Scenario: part of the design corpus arrives without one modality — e.g. a
vendor ships an obfuscated netlist from which only the data-flow graph can
be recovered, so the source-level code-branching (tabular) features are
missing.  The paper handles this with generative imputation; this example
quantifies what that buys compared to zero-filling or simply dropping the
incomplete designs.

Run with:  python examples/missing_modality_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import LateFusionModel, SuiteConfig, TrojanDataset, default_config, extract_modalities
from repro.features import MultimodalFeatures
from repro.features.pipeline import MODALITY_TABULAR
from repro.gan import (
    AmplificationConfig,
    GANConfig,
    amplify_multimodal,
    impute_missing_modalities,
)
from repro.metrics import brier_score, format_table, roc_auc


def evaluate(train: MultimodalFeatures, test: MultimodalFeatures, seed: int) -> dict:
    config = default_config(seed=seed)
    model = LateFusionModel(config)
    model.fit(train)
    probabilities = model.predict_proba(test)[:, 1]
    return {
        "train_size": len(train),
        "brier": brier_score(probabilities, test.labels),
        "auc": roc_auc(probabilities, test.labels),
    }


def main() -> None:
    rng = np.random.default_rng(23)
    missing_fraction = 0.35

    print("== Preparing the corpus ==")
    dataset = TrojanDataset.generate(SuiteConfig(n_trojan_free=40, n_trojan_infected=20, seed=13))
    features = extract_modalities(dataset)
    amplified = amplify_multimodal(
        features, AmplificationConfig(target_total=300, gan=GANConfig(epochs=250, seed=4))
    )
    train, test = amplified.stratified_split(0.25, rng)
    print(f"training designs: {len(train)}, test designs: {len(test)}")

    print(
        f"\n== Simulating {missing_fraction:.0%} of training designs losing the "
        "tabular modality =="
    )
    damaged = train.with_missing_modality(
        MODALITY_TABULAR, missing_fraction, rng=np.random.default_rng(1)
    )
    n_missing = int(damaged.missing_mask(MODALITY_TABULAR).sum())
    print(f"designs with a missing tabular modality: {n_missing}")

    # Strategy 1: complete data (upper bound — only available in hindsight).
    results = {"complete_data (upper bound)": evaluate(train, test, seed=3)}

    # Strategy 2: drop incomplete designs entirely.
    keep = ~damaged.missing_mask(MODALITY_TABULAR)
    dropped = damaged.subset(np.flatnonzero(keep))
    results["drop_incomplete_designs"] = evaluate(dropped, test, seed=3)

    # Strategy 3: zero-fill the missing modality.
    zero_filled = MultimodalFeatures(
        tabular=np.nan_to_num(damaged.tabular, nan=0.0),
        graph=damaged.graph.copy(),
        graph_images=damaged.graph_images,
        labels=damaged.labels,
        names=list(damaged.names),
        tabular_feature_names=damaged.tabular_feature_names,
        graph_feature_names=damaged.graph_feature_names,
    )
    results["zero_fill"] = evaluate(zero_filled, test, seed=3)

    # Strategy 4: GAN-based conditional imputation (the paper's approach).
    repaired = impute_missing_modalities(damaged)
    results["gan_imputation (NOODLE)"] = evaluate(repaired, test, seed=3)

    print("\n== Results ==")
    rows = [{"strategy": name, **metrics} for name, metrics in results.items()]
    print(
        format_table(
            rows,
            columns=["strategy", "train_size", "brier", "auc"],
            title=f"Late-fusion quality with {missing_fraction:.0%} missing tabular modality",
        )
    )
    print(
        "\nReading guide: dropping incomplete designs shrinks the already-small "
        "training set, zero-filling feeds the classifier fabricated feature values, "
        "and conditional imputation reconstructs the missing modality from the one "
        "that is present — which is why it tracks the complete-data upper bound most closely."
    )


if __name__ == "__main__":
    main()
